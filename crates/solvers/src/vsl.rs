//! Stagnation-line viscous shock layer (VSL) with equilibrium chemistry and
//! radiative loss — the solver class behind the paper's Figs. 2–3 (Titan
//! probe heating environment and species profiles).
//!
//! The full shock layer between body and bow shock is solved on the
//! stagnation line of an axisymmetric blunt body. With `u = x·U(y)` the
//! exact stagnation-line reduction of the (thin) shock-layer equations is
//!
//! ```text
//! continuity :  (ρv)' = −2ρU
//! momentum   :  ρvU' + ρU² = ρ_δ a²  + (μU')'          a = du_e/dx
//! energy     :  ρv h'      = (Γ h')' + S_rad            Γ = μ/Pr  (Le = 1)
//! ```
//!
//! with no-slip/isothermal wall BCs and Rankine-Hugoniot edge conditions at
//! `y = δ`; the shock standoff `δ` is the eigenvalue fixed by the mass
//! balance `2∫ρU dy = ρ∞u∞`. The gas is in local thermochemical
//! equilibrium: all properties come from the element-potential solver at
//! the (constant) stagnation pressure, tabulated once per solve. The total
//! enthalpy form with Le = 1 carries the reaction (diffusion) energy flux
//! exactly as the era's VSL codes did.

use aerothermo_gas::equilibrium::EquilibriumGas;
use aerothermo_gas::error::GasError;
use aerothermo_gas::transport::{mixture_conductivity, mixture_viscosity};
use aerothermo_numerics::interp::MonotoneCubic;
use aerothermo_numerics::telemetry::{RunTelemetry, SolverError};
use aerothermo_numerics::tridiag::solve_tridiag;
use rayon::prelude::*;

/// VSL problem definition.
#[derive(Debug, Clone)]
pub struct VslProblem {
    /// Freestream velocity \[m/s\].
    pub u_inf: f64,
    /// Freestream density \[kg/m³\].
    pub rho_inf: f64,
    /// Freestream temperature \[K\].
    pub t_inf: f64,
    /// Nose radius \[m\].
    pub nose_radius: f64,
    /// Wall temperature \[K\].
    pub t_wall: f64,
    /// Grid points across the layer.
    pub n_points: usize,
    /// Include the radiative source/loss term (thin emission approximation).
    pub radiating: bool,
}

/// One station of the converged shock-layer profile.
#[derive(Debug, Clone)]
pub struct VslStation {
    /// Distance from the wall \[m\].
    pub y: f64,
    /// Temperature \[K\].
    pub temperature: f64,
    /// Density \[kg/m³\].
    pub density: f64,
    /// Total enthalpy \[J/kg\].
    pub enthalpy: f64,
    /// Tangential velocity-gradient function U \[1/s\].
    pub u_grad: f64,
    /// Normal mass flux ρv \[kg/(m²·s)\] (negative toward the wall).
    pub mass_flux: f64,
    /// Equilibrium species mole fractions (mixture order).
    pub mole_fractions: Vec<f64>,
    /// Equilibrium species number densities \[1/m³\].
    pub number_densities: Vec<f64>,
}

/// Converged VSL solution.
#[derive(Debug, Clone)]
pub struct VslSolution {
    /// Shock standoff distance \[m\].
    pub standoff: f64,
    /// Stagnation (edge) pressure \[Pa\].
    pub p_stag: f64,
    /// Post-shock (edge) temperature \[K\].
    pub t_edge: f64,
    /// Convective wall heat flux \[W/m²\].
    pub q_conv: f64,
    /// Radiative wall heat flux (thin-emission half-volume estimate)
    /// \[W/m²\]; 0 when `radiating` was off.
    pub q_rad_thin: f64,
    /// Stations from wall (first) to shock (last).
    pub stations: Vec<VslStation>,
    /// Species names (mixture order).
    pub species_names: Vec<String>,
    /// Run observability: property-table / relaxation phase timings, the
    /// standoff mass-balance residual history, and counter deltas.
    pub telemetry: RunTelemetry,
}

impl VslSolution {
    /// Mole-fraction profile of species `name` as `(y/δ, x)` pairs.
    #[must_use]
    pub fn species_profile(&self, name: &str) -> Vec<(f64, f64)> {
        let idx = self.species_names.iter().position(|n| n == name);
        let Some(idx) = idx else { return Vec::new() };
        self.stations
            .iter()
            .map(|s| (s.y / self.standoff, s.mole_fractions[idx]))
            .collect()
    }
}

/// Property tables at fixed pressure, parameterized by temperature.
struct PropertyTable {
    h_of_t: MonotoneCubic,
    t_of_h: MonotoneCubic,
    rho_of_t: MonotoneCubic,
    mu_of_t: MonotoneCubic,
    k_of_t: MonotoneCubic,
    cp_of_t: MonotoneCubic,
    /// Optically-thin volumetric radiative loss 4π·∫j_λdλ \[W/m³\] from the
    /// full spectral model (atomic lines + molecular bands) on the
    /// equilibrium composition at (T, p).
    sink_of_t: MonotoneCubic,
    t_min: f64,
    t_max: f64,
}

impl PropertyTable {
    fn build(gas: &EquilibriumGas, p: f64, t_min: f64, t_max: f64) -> Result<Self, SolverError> {
        let n = 96;
        let ts: Vec<f64> = (0..n)
            .map(|i| t_min * (t_max / t_min).powf(i as f64 / (n - 1) as f64))
            .collect();
        let names: Vec<String> = gas
            .mixture()
            .species()
            .iter()
            .map(|s| s.name.to_string())
            .collect();
        let lam = aerothermo_radiation::wavelength_grid(0.2e-6, 1.1e-6, 240);
        let rows: Result<Vec<(f64, f64, f64, f64, f64)>, GasError> = ts
            .par_iter()
            .map(|&t| {
                let st = gas.at_tp(t, p)?;
                let mu = mixture_viscosity(gas.mixture(), t, &st.mass_fractions);
                let k = mixture_conductivity(gas.mixture(), t, &st.mass_fractions);
                let sample = aerothermo_radiation::GasSample::equilibrium(
                    t,
                    names
                        .iter()
                        .cloned()
                        .zip(st.number_densities.iter().copied())
                        .collect(),
                );
                let spec = aerothermo_radiation::spectra::spectrum(&sample, &lam, 2e-9);
                let sink = 4.0 * std::f64::consts::PI * spec.total_emission();
                Ok((st.enthalpy, st.density, mu, k, sink))
            })
            .collect();
        let rows = rows.map_err(SolverError::from)?;
        let h: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let rho: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let mu: Vec<f64> = rows.iter().map(|r| r.2).collect();
        let k: Vec<f64> = rows.iter().map(|r| r.3).collect();
        let sink: Vec<f64> = rows.iter().map(|r| r.4).collect();
        // Equilibrium cp = dh/dT (finite differences on the table).
        let mut cp = vec![0.0; n];
        for i in 0..n {
            let (i0, i1) = if i == 0 {
                (0, 1)
            } else if i == n - 1 {
                (n - 2, n - 1)
            } else {
                (i - 1, i + 1)
            };
            cp[i] = (h[i1] - h[i0]) / (ts[i1] - ts[i0]);
        }
        Ok(Self {
            h_of_t: MonotoneCubic::new(ts.clone(), h.clone()),
            t_of_h: MonotoneCubic::new(h, ts.clone()),
            rho_of_t: MonotoneCubic::new(ts.clone(), rho),
            mu_of_t: MonotoneCubic::new(ts.clone(), mu),
            k_of_t: MonotoneCubic::new(ts.clone(), k),
            cp_of_t: MonotoneCubic::new(ts.clone(), cp),
            sink_of_t: MonotoneCubic::new(ts, sink),
            t_min,
            t_max,
        })
    }

    fn t(&self, h: f64) -> f64 {
        self.t_of_h.eval(h).clamp(self.t_min, self.t_max)
    }
}

/// Solve the stagnation-line VSL for an equilibrium gas.
///
/// The returned solution carries a [`RunTelemetry`] sink with the
/// property-table and relaxation phase timings and the standoff
/// mass-balance residual history.
///
/// # Errors
/// Propagates shock-jump, property-table, and convergence failures as
/// typed [`SolverError`]s ([`SolverError::IterationLimit`] when the
/// standoff iteration exhausts its budget).
pub fn solve(gas: &EquilibriumGas, problem: &VslProblem) -> Result<VslSolution, SolverError> {
    solve_scaled(gas, problem, 1.0)
}

/// [`solve`] under the shared retry/backoff policy
/// ([`crate::runctl::retry_with_backoff`]): on a recoverable failure (the
/// standoff iteration exhausting its budget, non-finite contamination) the
/// under-relaxation factor is scaled down and the solve repeated. The
/// returned [`crate::runctl::RetryOutcome`] carries the solution plus the
/// retries consumed and the scale that succeeded.
///
/// # Errors
/// The last attempt's error once the budget is exhausted, or immediately
/// for non-recoverable failures (bad inputs, table construction).
pub fn solve_with_retry(
    gas: &EquilibriumGas,
    problem: &VslProblem,
    max_retries: usize,
) -> Result<crate::runctl::RetryOutcome<VslSolution>, SolverError> {
    crate::runctl::retry_with_backoff(max_retries, 0.5, 1.0 / 64.0, |scale| {
        solve_scaled(gas, problem, scale)
    })
}

/// Stagnation solve at a given under-relaxation scale (1.0 = the nominal
/// 0.7 factor; backoff multiplies it down).
#[allow(clippy::too_many_lines)]
fn solve_scaled(
    gas: &EquilibriumGas,
    problem: &VslProblem,
    relax_scale: f64,
) -> Result<VslSolution, SolverError> {
    let mut telemetry = RunTelemetry::new();
    let p_inf = problem.rho_inf * aerothermo_numerics::constants::R_UNIVERSAL * problem.t_inf / {
        // Cold-gas molar mass. The composition is frozen molecular well
        // below ~1000 K, so evaluate the equilibrium at a comfortable
        // 600 K — same molar mass, far better conditioning than the
        // 100–200 K freestream for C/H/N mixtures.
        let cold = gas
            .at_trho(problem.t_inf.max(600.0), problem.rho_inf)
            .map_err(|e| format!("freestream state: {e}"))?;
        cold.molar_mass
    };

    // Post-shock equilibrium edge state.
    let jump = crate::shock::normal_shock(gas, problem.rho_inf, p_inf, problem.u_inf)
        .map_err(|e| format!("equilibrium shock: {e}"))?;
    // Stagnation pressure: post-shock static + dynamic recompression.
    let p_stag = jump.p + 0.5 * jump.rho * jump.u * jump.u;
    let t_edge = jump.t;

    // The shock-layer temperatures live in [t_wall, t_edge]; the table floor
    // only needs modest margin below the wall. Very low temperatures (< 250
    // K) strain the equilibrium solver in C/H/N mixtures without being used.
    let t_lo = (0.6 * problem.t_wall).max(250.0);
    let t_hi = (t_edge * 1.35).min(45_000.0);
    let table = telemetry.time_phase("vsl_property_table", || {
        PropertyTable::build(gas, p_stag, t_lo, t_hi)
    })?;

    // Newtonian edge velocity gradient.
    let rho_edge = table.rho_of_t.eval(t_edge);
    let a_grad = (2.0 * (p_stag - p_inf).max(0.0) / rho_edge).sqrt() / problem.nose_radius;

    let n = problem.n_points.max(12);
    // Two-sided clustering: boundary layer at the wall, shock at the edge.
    let xi = aerothermo_grid::stretch::tanh_two_sided(n, 2.2);

    let h_wall = table.h_of_t.eval(problem.t_wall);
    let h_edge = table.h_of_t.eval(t_edge);

    // Initial guesses.
    let mdot = problem.rho_inf * problem.u_inf;
    let mut delta = 0.6 * mdot / (rho_edge * a_grad); // from 2∫ρU ≈ ρ_e·a·δ
    let mut h: Vec<f64> = xi.iter().map(|&s| h_wall + (h_edge - h_wall) * s).collect();
    let mut u_fn: Vec<f64> = xi.iter().map(|&s| a_grad * s).collect();

    let mut q_conv = 0.0;
    let mut converged = false;
    let mut delta_prev = delta;
    let mut mass_prev = f64::NAN;
    let mut mass_resid_hist: Vec<f64> = Vec::new();
    let relax_t0 = std::time::Instant::now();

    for _outer in 0..40 {
        // Inner Picard iterations at fixed δ.
        let y: Vec<f64> = xi.iter().map(|&s| s * delta).collect();
        for _inner in 0..60 {
            let t: Vec<f64> = h.iter().map(|&hv| table.t(hv)).collect();
            let rho: Vec<f64> = t.iter().map(|&tv| table.rho_of_t.eval(tv)).collect();
            let mu: Vec<f64> = t.iter().map(|&tv| table.mu_of_t.eval(tv)).collect();
            let gam: Vec<f64> = t
                .iter()
                .map(|&tv| table.k_of_t.eval(tv) / table.cp_of_t.eval(tv).max(1.0))
                .collect();

            // Continuity: ρv(y) = −2∫ρU dy.
            let mut rv = vec![0.0; n];
            for i in 1..n {
                rv[i] =
                    rv[i - 1] - (rho[i] * u_fn[i] + rho[i - 1] * u_fn[i - 1]) * (y[i] - y[i - 1]);
            }

            // Momentum tridiagonal for U.
            let mut lo = vec![0.0; n];
            let mut di = vec![0.0; n];
            let mut up = vec![0.0; n];
            let mut rhs = vec![0.0; n];
            di[0] = 1.0;
            rhs[0] = 0.0; // no-slip
            di[n - 1] = 1.0;
            rhs[n - 1] = a_grad; // shock edge
            for i in 1..n - 1 {
                let dym = y[i] - y[i - 1];
                let dyp = y[i + 1] - y[i];
                let mu_m = 0.5 * (mu[i] + mu[i - 1]);
                let mu_p = 0.5 * (mu[i] + mu[i + 1]);
                let wm = mu_m / dym;
                let wp = mu_p / dyp;
                let vol = 0.5 * (dym + dyp);
                // diffusion
                lo[i] = wm / vol;
                up[i] = wp / vol;
                di[i] = -(wm + wp) / vol;
                // convection ρvU' (upwind on sign of rv: v < 0 → info from +y)
                let conv = rv[i];
                if conv >= 0.0 {
                    di[i] -= conv / dym;
                    lo[i] += conv / dym;
                } else {
                    di[i] += conv / dyp;
                    up[i] -= conv / dyp;
                }
                // ρU² sink (Picard) and pressure source
                di[i] -= rho[i] * u_fn[i].abs();
                rhs[i] = -rho_edge * a_grad * a_grad;
            }
            let mut u_new = rhs.clone();
            solve_tridiag(&lo, &di, &up, &mut u_new)
                .map_err(|e| format!("VSL momentum solve: {e}"))?;

            // Energy tridiagonal for h.
            let mut lo2 = vec![0.0; n];
            let mut di2 = vec![0.0; n];
            let mut up2 = vec![0.0; n];
            let mut rhs2 = vec![0.0; n];
            di2[0] = 1.0;
            rhs2[0] = h_wall;
            di2[n - 1] = 1.0;
            rhs2[n - 1] = h_edge;
            for i in 1..n - 1 {
                let dym = y[i] - y[i - 1];
                let dyp = y[i + 1] - y[i];
                let g_m = 0.5 * (gam[i] + gam[i - 1]);
                let g_p = 0.5 * (gam[i] + gam[i + 1]);
                let wm = g_m / dym;
                let wp = g_p / dyp;
                let vol = 0.5 * (dym + dyp);
                lo2[i] = wm / vol;
                up2[i] = wp / vol;
                di2[i] = -(wm + wp) / vol;
                let conv = rv[i];
                if conv >= 0.0 {
                    di2[i] -= conv / dym;
                    lo2[i] += conv / dym;
                } else {
                    di2[i] += conv / dyp;
                    up2[i] -= conv / dyp;
                }
                // Optically-thin radiative loss from the spectral model (the
                // strongly self-absorbed band heads make this an upper
                // bound; the refined tangent-slab transport runs in
                // post-processing). Energy equation: (Γh')' − ρvh' = sink.
                if problem.radiating {
                    rhs2[i] += table.sink_of_t.eval(t[i]);
                }
            }
            let mut h_new = rhs2.clone();
            solve_tridiag(&lo2, &di2, &up2, &mut h_new)
                .map_err(|e| format!("VSL energy solve: {e}"))?;

            // Under-relaxed update; track convergence.
            let mut du = 0.0_f64;
            for i in 0..n {
                // Nominal 0.7, rescaled by the retry policy's backoff
                // (exactly 0.7 at scale 1.0).
                let relax = 0.7 * relax_scale;
                let u_next = (1.0 - relax) * u_fn[i] + relax * u_new[i];
                let h_next = (1.0 - relax) * h[i]
                    + relax * h_new[i].clamp(table.h_of_t.eval(t_lo), table.h_of_t.eval(t_hi));
                du = du.max((u_next - u_fn[i]).abs() / a_grad);
                du = du.max((h_next - h[i]).abs() / h_edge.abs().max(1.0));
                u_fn[i] = u_next;
                h[i] = h_next;
            }
            if du < 1e-8 {
                break;
            }
        }

        // Mass-balance eigencondition on δ.
        let t: Vec<f64> = h.iter().map(|&hv| table.t(hv)).collect();
        let rho: Vec<f64> = t.iter().map(|&tv| table.rho_of_t.eval(tv)).collect();
        let y: Vec<f64> = xi.iter().map(|&s| s * delta).collect();
        let mut mass = 0.0;
        for i in 1..n {
            mass += (rho[i] * u_fn[i] + rho[i - 1] * u_fn[i - 1]) * (y[i] - y[i - 1]);
        }
        let resid = mass - mdot;
        mass_resid_hist.push((resid / mdot).abs());
        if resid.abs() < 1e-5 * mdot {
            converged = true;
            // Wall heat flux from the enthalpy gradient: q = Γ dh/dy.
            let g0 = table.k_of_t.eval(problem.t_wall) / table.cp_of_t.eval(problem.t_wall);
            q_conv = g0 * (h[1] - h[0]) / (y[1] - y[0]);
            break;
        }
        // Secant / proportional update of δ (mass grows ~linearly with δ).
        let new_delta = if mass_prev.is_finite() && (mass - mass_prev).abs() > 1e-12 {
            let d = delta - resid * (delta - delta_prev) / (mass - mass_prev);
            if d > 0.2 * delta && d < 5.0 * delta {
                d
            } else {
                delta * (mdot / mass).clamp(0.5, 2.0)
            }
        } else {
            delta * (mdot / mass).clamp(0.5, 2.0)
        };
        delta_prev = delta;
        mass_prev = mass;
        delta = new_delta;
    }

    telemetry.add_phase_secs("vsl_relax", relax_t0.elapsed().as_secs_f64());
    telemetry.record_history("standoff_mass_residual", mass_resid_hist.clone());
    if !converged {
        return Err(SolverError::IterationLimit {
            context: "VSL standoff iteration".to_string(),
            iters: 40,
            residual: mass_resid_hist.last().copied().unwrap_or(f64::NAN),
        });
    }

    // Assemble stations with equilibrium compositions (parallel).
    let y: Vec<f64> = xi.iter().map(|&s| s * delta).collect();
    let t: Vec<f64> = h.iter().map(|&hv| table.t(hv)).collect();
    let rho: Vec<f64> = t.iter().map(|&tv| table.rho_of_t.eval(tv)).collect();
    let mut rv = vec![0.0; n];
    for i in 1..n {
        rv[i] = rv[i - 1] - (rho[i] * u_fn[i] + rho[i - 1] * u_fn[i - 1]) * (y[i] - y[i - 1]);
    }
    let stations: Result<Vec<VslStation>, GasError> = (0..n)
        .into_par_iter()
        .map(|i| {
            let st = gas.at_tp(t[i], p_stag)?;
            Ok(VslStation {
                y: y[i],
                temperature: t[i],
                density: rho[i],
                enthalpy: h[i],
                u_grad: u_fn[i],
                mass_flux: rv[i],
                mole_fractions: st.mole_fractions,
                number_densities: st.number_densities,
            })
        })
        .collect();
    let stations = stations?;

    // Thin-emission radiative wall flux: half of the volume emission reaches
    // the wall (optically thin limit of the tangent slab).
    let q_rad_thin = if problem.radiating {
        let mut q = 0.0;
        for i in 1..n {
            let em = |k: usize| -> f64 { table.sink_of_t.eval(t[k]) };
            // Half the (isotropic) volume emission reaches the wall.
            q += 0.25 * (em(i) + em(i - 1)) * (y[i] - y[i - 1]);
        }
        q
    } else {
        0.0
    };

    // Physics audits over the converged layer: mass-balance closure,
    // radiative-sink nonnegativity, and state positivity.
    if crate::audit::cadence() != 0 {
        let mass_resid = mass_resid_hist.last().copied().unwrap_or(f64::NAN);
        let mut min_t = f64::INFINITY;
        let mut min_t_at = 0usize;
        let mut min_sink = f64::INFINITY;
        let mut max_sink = 0.0_f64;
        for (i, &ti) in t.iter().enumerate() {
            if ti < min_t {
                min_t = ti;
                min_t_at = i;
            }
            if problem.radiating {
                let s = table.sink_of_t.eval(ti);
                min_sink = min_sink.min(s);
                max_sink = max_sink.max(s);
            }
        }
        let mut findings = vec![
            crate::audit::graded(
                "standoff_mass_balance",
                mass_resid,
                1e-4,
                1e-2,
                mass_resid_hist.len(),
                format!("relative 2∫ρU dy defect at δ = {delta:.4e} m"),
            ),
            crate::audit::positivity_finding("temperature_positivity", min_t, (min_t_at, 0), n),
        ];
        if problem.radiating {
            findings.push(crate::audit::graded(
                "radiative_flux_nonnegativity",
                (-min_sink).max(0.0) / max_sink.max(1e-300),
                1e-12,
                1e-3,
                n,
                format!("min volumetric sink {min_sink:.3e} W/m³"),
            ));
        }
        crate::audit::apply(&mut telemetry, findings)?;
    }

    Ok(VslSolution {
        standoff: delta,
        p_stag,
        t_edge,
        q_conv,
        q_rad_thin,
        stations,
        species_names: gas
            .mixture()
            .species()
            .iter()
            .map(|s| s.name.to_string())
            .collect(),
        telemetry,
    })
}

/// One station of a downstream VSL march.
#[derive(Debug, Clone)]
pub struct VslMarchStation {
    /// Arc length from the stagnation point \[m\].
    pub s: f64,
    /// Local body radius \[m\].
    pub r_body: f64,
    /// Edge pressure \[Pa\] (modified Newtonian).
    pub p_edge: f64,
    /// Edge tangential velocity \[m/s\].
    pub u_edge: f64,
    /// Shock-layer thickness \[m\].
    pub delta: f64,
    /// Convective wall heat flux \[W/m²\].
    pub q_conv: f64,
    /// Optically-thin radiative wall flux \[W/m²\].
    pub q_rad_thin: f64,
}

/// Result of a windward-forebody VSL march: the converged stations plus the
/// run telemetry (march phase timing and any audit findings).
#[derive(Debug, Clone, Default)]
pub struct VslMarchSolution {
    /// Converged stations ordered by arc length (non-converged ones skipped).
    pub stations: Vec<VslMarchStation>,
    /// Phase timings, audit findings, and counter deltas for the march.
    pub telemetry: RunTelemetry,
}

/// Station-stepped form of the windward-forebody VSL march (see [`march`]).
///
/// The station-independent preamble (freestream state, equilibrium shock
/// jump, property table, stagnation quantities) is computed once in
/// [`VslMarcher::new`]; each call to [`VslMarcher::advance_station`] then
/// solves one station, so the run controller can checkpoint, roll back, and
/// rescale the under-relaxation between stations.
pub struct VslMarcher<'a> {
    problem: VslProblem,
    body: &'a dyn aerothermo_grid::bodies::Body,
    n_stations: usize,
    gas_desc: String,
    // Station-independent preamble.
    p_inf: f64,
    p_stag: f64,
    table: PropertyTable,
    h0: f64,
    gamma_e: f64,
    smax: f64,
    n: usize,
    xi: Vec<f64>,
    h_wall: f64,
    t_lo: f64,
    t_hi: f64,
    mdot_inf: f64,
    // Run-control state.
    next_station: usize,
    relax_scale: f64,
    stations: Vec<VslMarchStation>,
    telemetry: RunTelemetry,
    march_t0: std::time::Instant,
}

impl<'a> VslMarcher<'a> {
    /// Compute the station-independent preamble and position the march at
    /// station 1.
    ///
    /// # Errors
    /// Propagates freestream-state, equilibrium-shock, and property-table
    /// failures.
    pub fn new(
        gas: &EquilibriumGas,
        problem: &VslProblem,
        body: &'a dyn aerothermo_grid::bodies::Body,
        n_stations: usize,
    ) -> Result<Self, SolverError> {
        let march_t0 = std::time::Instant::now();
        // One freestream evaluation serves both the cold-gas molar mass and
        // the total enthalpy below (the latter used to silently fall back to
        // 0.0 on a second, failable evaluation).
        let fs = gas
            .at_trho(problem.t_inf.max(600.0), problem.rho_inf)
            .map_err(|e| format!("freestream state: {e}"))?;
        let p_inf = problem.rho_inf * aerothermo_numerics::constants::R_UNIVERSAL * problem.t_inf
            / fs.molar_mass;
        let jump = crate::shock::normal_shock(gas, problem.rho_inf, p_inf, problem.u_inf)
            .map_err(|e| format!("equilibrium shock: {e}"))?;
        let p_stag = jump.p + 0.5 * jump.rho * jump.u * jump.u;
        let t_edge0 = jump.t;
        let t_lo = (0.6 * problem.t_wall).max(250.0);
        let t_hi = (t_edge0 * 1.35).min(45_000.0);
        let table = PropertyTable::build(gas, p_stag, t_lo, t_hi)?;
        // Total enthalpy from the freestream state directly.
        let h0 = fs.enthalpy + 0.5 * problem.u_inf * problem.u_inf;
        // Effective expansion exponent at the stagnation state.
        let gamma_e = {
            let rho_s = table.rho_of_t.eval(t_edge0);
            let e_s = table.h_of_t.eval(t_edge0) - p_stag / rho_s;
            1.0 + p_stag / (rho_s * e_s.max(1e3))
        };

        let smax = body.arc_length();
        let n = problem.n_points.max(12);
        let xi = aerothermo_grid::stretch::tanh_two_sided(n, 2.2);
        let h_wall = table.h_of_t.eval(problem.t_wall);
        let mdot_inf = problem.rho_inf * problem.u_inf;
        Ok(Self {
            problem: problem.clone(),
            body,
            n_stations,
            gas_desc: format!("equilibrium({} species)", gas.mixture().species().len()),
            p_inf,
            p_stag,
            table,
            h0,
            gamma_e,
            smax,
            n,
            xi,
            h_wall,
            t_lo,
            t_hi,
            mdot_inf,
            next_station: 1,
            relax_scale: 1.0,
            stations: Vec::new(),
            telemetry: RunTelemetry::new(),
            march_t0,
        })
    }

    /// Stations converged so far.
    #[must_use]
    pub fn stations(&self) -> &[VslMarchStation] {
        &self.stations
    }

    /// Solve one station's shock-layer two-point problem. `Ok(None)` when
    /// the station is geometrically degenerate or fails to converge (the
    /// march skips it, matching the original loop's semantics).
    #[allow(clippy::too_many_lines)]
    fn solve_station(&self, k: usize) -> Result<Option<VslMarchStation>, SolverError> {
        let _sp = aerothermo_numerics::trace::span("vsl_station");
        let (problem, body, table) = (&self.problem, self.body, &self.table);
        let (p_inf, p_stag, h0, gamma_e) = (self.p_inf, self.p_stag, self.h0, self.gamma_e);
        let (smax, n, h_wall, mdot_inf) = (self.smax, self.n, self.h_wall, self.mdot_inf);
        let (t_lo, t_hi) = (self.t_lo, self.t_hi);
        let xi = &self.xi;
        let n_stations = self.n_stations;
        let s = smax * k as f64 / n_stations as f64;
        let theta = body.body_angle(s);
        let (_, r_b) = body.point(s);
        if r_b < 1e-6 {
            return Ok(None);
        }
        let p_e = p_inf + (p_stag - p_inf) * theta.sin().powi(2);
        let u_e =
            (2.0 * h0 * (1.0 - (p_e / p_stag).powf((gamma_e - 1.0) / gamma_e)).max(0.0)).sqrt();
        if u_e < 1.0 {
            return Ok(None);
        }
        let h_e = (h0 - 0.5 * u_e * u_e).max(h_wall * 1.05);
        let t_e = table.t(h_e);
        let p_scale = p_e / p_stag;

        // Axisymmetric divergence rate Λ = d ln(u_e·r_b)/ds by differences.
        let lambda = {
            let ds = 1e-3 * smax;
            let s2 = (s + ds).min(smax);
            let th2 = body.body_angle(s2);
            let (_, rb2) = body.point(s2);
            let pe2 = p_inf + (p_stag - p_inf) * th2.sin().powi(2);
            let ue2 =
                (2.0 * h0 * (1.0 - (pe2 / p_stag).powf((gamma_e - 1.0) / gamma_e)).max(0.0)).sqrt();
            ((ue2 * rb2).max(1e-30).ln() - (u_e * r_b).max(1e-30).ln()) / (s2 - s).max(1e-12)
        }
        .max(1e-6);

        // Mass balance target: ∫ρu dy = ρ∞·u∞·r_b/2.
        let mass_target = 0.5 * mdot_inf * r_b;

        // Solve the station: unknowns u(y), h(y); thickness δ by secant.
        let rho_e = table.rho_of_t.eval(t_e) * p_scale;
        let mut delta = (mass_target / (0.5 * rho_e * u_e)).max(1e-6);
        let mut u: Vec<f64> = xi.iter().map(|&z| u_e * z).collect();
        let mut h: Vec<f64> = xi.iter().map(|&z| h_wall + (h_e - h_wall) * z).collect();
        let mut converged = false;
        let mut delta_prev = delta;
        let mut mass_prev = f64::NAN;
        let mut q_conv = 0.0;
        let mut q_rad = 0.0;

        'outer: for _pass in 0..40 {
            let y: Vec<f64> = xi.iter().map(|&z| z * delta).collect();
            for _inner in 0..50 {
                let t: Vec<f64> = h.iter().map(|&hv| table.t(hv)).collect();
                let rho: Vec<f64> = t
                    .iter()
                    .map(|&tv| table.rho_of_t.eval(tv) * p_scale)
                    .collect();
                let mu: Vec<f64> = t.iter().map(|&tv| table.mu_of_t.eval(tv)).collect();
                let gam: Vec<f64> = t
                    .iter()
                    .map(|&tv| table.k_of_t.eval(tv) / table.cp_of_t.eval(tv).max(1.0))
                    .collect();

                // Continuity with streamwise divergence.
                let mut rv = vec![0.0; n];
                for i in 1..n {
                    rv[i] = rv[i - 1]
                        - 0.5
                            * lambda
                            * (rho[i] * u[i] + rho[i - 1] * u[i - 1])
                            * (y[i] - y[i - 1]);
                }

                // Tangential momentum (local similarity, dp/ds absorbed in
                // the u_e edge condition).
                let mut lo = vec![0.0; n];
                let mut di = vec![0.0; n];
                let mut up = vec![0.0; n];
                let mut rhs = vec![0.0; n];
                di[0] = 1.0;
                rhs[0] = 0.0;
                di[n - 1] = 1.0;
                rhs[n - 1] = u_e;
                for i in 1..n - 1 {
                    let dym = y[i] - y[i - 1];
                    let dyp = y[i + 1] - y[i];
                    let wm = 0.5 * (mu[i] + mu[i - 1]) / dym;
                    let wp = 0.5 * (mu[i] + mu[i + 1]) / dyp;
                    let vol = 0.5 * (dym + dyp);
                    lo[i] = wm / vol;
                    up[i] = wp / vol;
                    di[i] = -(wm + wp) / vol;
                    let conv = rv[i];
                    if conv >= 0.0 {
                        di[i] -= conv / dym;
                        lo[i] += conv / dym;
                    } else {
                        di[i] += conv / dyp;
                        up[i] -= conv / dyp;
                    }
                }
                let mut u_new = rhs.clone();
                solve_tridiag(&lo, &di, &up, &mut u_new)
                    .map_err(|e| format!("march momentum at s={s:.3}: {e}"))?;

                // Total-enthalpy equation (Le = 1; dissipation folded via
                // the Pr≈1 total-enthalpy form).
                let mut lo2 = vec![0.0; n];
                let mut di2 = vec![0.0; n];
                let mut up2 = vec![0.0; n];
                let mut rhs2 = vec![0.0; n];
                di2[0] = 1.0;
                rhs2[0] = h_wall;
                di2[n - 1] = 1.0;
                rhs2[n - 1] = h_e;
                for i in 1..n - 1 {
                    let dym = y[i] - y[i - 1];
                    let dyp = y[i + 1] - y[i];
                    let wm = 0.5 * (gam[i] + gam[i - 1]) / dym;
                    let wp = 0.5 * (gam[i] + gam[i + 1]) / dyp;
                    let vol = 0.5 * (dym + dyp);
                    lo2[i] = wm / vol;
                    up2[i] = wp / vol;
                    di2[i] = -(wm + wp) / vol;
                    let conv = rv[i];
                    if conv >= 0.0 {
                        di2[i] -= conv / dym;
                        lo2[i] += conv / dym;
                    } else {
                        di2[i] += conv / dyp;
                        up2[i] -= conv / dyp;
                    }
                    if problem.radiating {
                        rhs2[i] += table.sink_of_t.eval(t[i]);
                    }
                }
                let mut h_new = rhs2.clone();
                solve_tridiag(&lo2, &di2, &up2, &mut h_new)
                    .map_err(|e| format!("march energy at s={s:.3}: {e}"))?;

                let mut du = 0.0_f64;
                for i in 0..n {
                    // Nominal 0.7, rescaled by the run controller's backoff
                    // (exactly 0.7 at scale 1.0).
                    let relax = 0.7 * self.relax_scale;
                    let un = (1.0 - relax) * u[i] + relax * u_new[i];
                    let hn = (1.0 - relax) * h[i]
                        + relax * h_new[i].clamp(table.h_of_t.eval(t_lo), table.h_of_t.eval(t_hi));
                    du = du.max((un - u[i]).abs() / u_e.max(1.0));
                    du = du.max((hn - h[i]).abs() / h_e.abs().max(1.0));
                    u[i] = un;
                    h[i] = hn;
                }
                if du < 1e-8 {
                    break;
                }
            }

            // Mass balance on δ.
            let t: Vec<f64> = h.iter().map(|&hv| table.t(hv)).collect();
            let rho: Vec<f64> = t
                .iter()
                .map(|&tv| table.rho_of_t.eval(tv) * p_scale)
                .collect();
            let y: Vec<f64> = xi.iter().map(|&z| z * delta).collect();
            let mut mass = 0.0;
            for i in 1..n {
                mass += 0.5 * (rho[i] * u[i] + rho[i - 1] * u[i - 1]) * (y[i] - y[i - 1]);
            }
            let resid = mass - mass_target;
            if resid.abs() < 1e-4 * mass_target {
                let g0 = table.k_of_t.eval(problem.t_wall) / table.cp_of_t.eval(problem.t_wall);
                q_conv = g0 * (h[1] - h[0]) / (y[1] - y[0]);
                if problem.radiating {
                    for i in 1..n {
                        let em =
                            0.5 * (table.sink_of_t.eval(t[i]) + table.sink_of_t.eval(t[i - 1]));
                        q_rad += 0.5 * em * (y[i] - y[i - 1]) * 0.5;
                    }
                }
                converged = true;
                break 'outer;
            }
            let new_delta = if mass_prev.is_finite() && (mass - mass_prev).abs() > 1e-12 {
                let d = delta - resid * (delta - delta_prev) / (mass - mass_prev);
                if d > 0.2 * delta && d < 5.0 * delta {
                    d
                } else {
                    delta * (mass_target / mass).clamp(0.5, 2.0)
                }
            } else {
                delta * (mass_target / mass).clamp(0.5, 2.0)
            };
            delta_prev = delta;
            mass_prev = mass;
            delta = new_delta;
        }

        if converged {
            Ok(Some(VslMarchStation {
                s,
                r_body: r_b,
                p_edge: p_e,
                u_edge: u_e,
                delta,
                q_conv,
                q_rad_thin: q_rad,
            }))
        } else {
            Ok(None)
        }
    }

    /// Solve the next station and record it if it converged; skipped
    /// stations advance the cursor without adding a record. Returns whether
    /// the station converged.
    ///
    /// # Errors
    /// Propagates tridiagonal-solve failures at the station.
    pub fn advance_station(&mut self) -> Result<bool, SolverError> {
        let k = self.next_station;
        let station = self.solve_station(k)?;
        self.next_station = k + 1;
        match station {
            Some(st) => {
                self.stations.push(st);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Close out the march: phase timing, heating history, and the physics
    /// audits over the converged stations.
    ///
    /// # Errors
    /// [`SolverError::Numerical`] when no station converged; hard audit
    /// failures from [`crate::audit::apply`].
    pub fn finish(mut self) -> Result<VslMarchSolution, SolverError> {
        let out = std::mem::take(&mut self.stations);
        if out.is_empty() {
            return Err(SolverError::Numerical(
                "VSL march: no station converged".to_string(),
            ));
        }
        self.telemetry
            .add_phase_secs("vsl_march", self.march_t0.elapsed().as_secs_f64());
        self.telemetry.record_history(
            "station_q_conv",
            out.iter().map(|st| st.q_conv).collect::<Vec<_>>(),
        );

        // Physics audits over the converged stations: layer thickness and
        // wall fluxes must stay positive (radiative flux nonnegative)
        // everywhere.
        if crate::audit::cadence() != 0 {
            let mut min_delta = f64::INFINITY;
            let mut min_delta_at = 0usize;
            let mut min_q_conv = f64::INFINITY;
            let mut min_q_conv_at = 0usize;
            let mut min_q_rad = f64::INFINITY;
            let mut max_q_rad = 0.0_f64;
            for (k, st) in out.iter().enumerate() {
                if st.delta < min_delta {
                    min_delta = st.delta;
                    min_delta_at = k;
                }
                if st.q_conv < min_q_conv {
                    min_q_conv = st.q_conv;
                    min_q_conv_at = k;
                }
                min_q_rad = min_q_rad.min(st.q_rad_thin);
                max_q_rad = max_q_rad.max(st.q_rad_thin);
            }
            let mut findings = vec![
                crate::audit::positivity_finding(
                    "layer_thickness_positivity",
                    min_delta,
                    (min_delta_at, 0),
                    out.len(),
                ),
                crate::audit::positivity_finding(
                    "convective_flux_positivity",
                    min_q_conv,
                    (min_q_conv_at, 0),
                    out.len(),
                ),
            ];
            if self.problem.radiating {
                findings.push(crate::audit::graded(
                    "radiative_flux_nonnegativity",
                    (-min_q_rad).max(0.0) / max_q_rad.max(1e-300),
                    1e-12,
                    1e-3,
                    out.len(),
                    format!("min station radiative wall flux {min_q_rad:.3e} W/m²"),
                ));
            }
            crate::audit::apply(&mut self.telemetry, findings)?;
        }
        Ok(VslMarchSolution {
            stations: out,
            telemetry: self.telemetry,
        })
    }
}

impl crate::runctl::Steppable for VslMarcher<'_> {
    fn advance(&mut self) -> Result<f64, SolverError> {
        // Detect contaminated station records (fault injection / upstream
        // table pathologies) before doing more work on top of them.
        for (k, st) in self.stations.iter().enumerate() {
            if !(st.q_conv.is_finite() && st.delta.is_finite() && st.u_edge.is_finite()) {
                return Err(SolverError::NonFinite {
                    field: "q_conv",
                    i: k,
                    j: 0,
                });
            }
        }
        if self.next_station > self.n_stations {
            return Ok(0.0);
        }
        self.advance_station()?;
        // Stations converge or are skipped outright; the progress unit is
        // the station, so report a flat residual and let the non-finite
        // checks drive rollback.
        Ok(1.0)
    }

    fn progress(&self) -> usize {
        self.next_station - 1
    }

    fn save_state(&self) -> crate::runctl::Snapshot {
        let mut data = Vec::with_capacity(7 * self.stations.len());
        for st in &self.stations {
            data.extend_from_slice(&[
                st.s,
                st.r_body,
                st.p_edge,
                st.u_edge,
                st.delta,
                st.q_conv,
                st.q_rad_thin,
            ]);
        }
        crate::runctl::Snapshot {
            step: self.next_station,
            cfl_scale: self.relax_scale,
            data,
        }
    }

    fn restore_state(&mut self, snap: &crate::runctl::Snapshot) -> Result<(), SolverError> {
        if !snap.data.len().is_multiple_of(7) {
            return Err(SolverError::BadInput(format!(
                "vsl_march restore: state length {} is not a whole number of stations",
                snap.data.len()
            )));
        }
        self.stations = snap
            .data
            .chunks_exact(7)
            .map(|row| VslMarchStation {
                s: row[0],
                r_body: row[1],
                p_edge: row[2],
                u_edge: row[3],
                delta: row[4],
                q_conv: row[5],
                q_rad_thin: row[6],
            })
            .collect();
        self.next_station = snap.step;
        self.relax_scale = snap.cfl_scale;
        Ok(())
    }

    fn cfl_scale(&self) -> f64 {
        self.relax_scale
    }

    fn set_cfl_scale(&mut self, scale: f64) {
        self.relax_scale = scale;
    }

    fn meta(&self) -> crate::runctl::RunMeta {
        crate::runctl::RunMeta {
            tag: "vsl_march".to_string(),
            gas: self.gas_desc.clone(),
            shape: (self.n_stations, self.n, 7),
        }
    }

    fn telemetry_mut(&mut self) -> &mut RunTelemetry {
        &mut self.telemetry
    }

    fn poison(&mut self) {
        match self.stations.last_mut() {
            Some(st) => st.q_conv = f64::NAN,
            None => self.stations.push(VslMarchStation {
                s: 0.0,
                r_body: 0.0,
                p_edge: 0.0,
                u_edge: 0.0,
                delta: 0.0,
                q_conv: f64::NAN,
                q_rad_thin: 0.0,
            }),
        }
    }
}

/// Windward-forebody VSL march: solves the shock layer at stations along an
/// axisymmetric body in the local-similarity approximation — the mode in
/// which the era's VSL codes produced whole-forebody heating environments.
///
/// At each station the normal momentum/energy two-point problem of the
/// stagnation solver is re-solved with:
///
/// * modified-Newtonian edge pressure `p_e(s)` and the isentropic
///   effective-γ edge velocity `u_e(s)`,
/// * the streamwise-divergence continuity
///   `ρv(y) = −Λ(s)·∫ρu dy`, `Λ = d ln(u_e·r_b)/ds` (axisymmetric growth),
/// * the shock-swallowing mass balance `∫ρu dy = ρ∞·u∞·r_b/2` fixing the
///   local layer thickness δ(s).
///
/// Equilibrium properties come from the stagnation-pressure table with
/// ideal-gas pressure scaling of the density (composition shifts with
/// pressure are second order across the windward layer).
///
/// Delegates to [`VslMarcher`]; drive the marcher directly (or through
/// [`crate::runctl::run_controlled`]) for checkpoint/rollback control.
///
/// # Errors
/// Propagates shock and table failures; stations that fail to converge are
/// skipped with their index reported in the error when all fail.
pub fn march(
    gas: &EquilibriumGas,
    problem: &VslProblem,
    body: &dyn aerothermo_grid::bodies::Body,
    n_stations: usize,
) -> Result<VslMarchSolution, SolverError> {
    let mut marcher = VslMarcher::new(gas, problem, body, n_stations)?;
    while marcher.next_station <= n_stations {
        marcher.advance_station()?;
    }
    marcher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerothermo_gas::equilibrium::{air9_equilibrium, titan_equilibrium};

    fn shuttle_problem() -> VslProblem {
        VslProblem {
            u_inf: 6700.0,
            rho_inf: 1.6e-4,
            t_inf: 230.0,
            nose_radius: 0.6,
            t_wall: 1200.0,
            n_points: 48,
            radiating: false,
        }
    }

    #[test]
    fn air_stagnation_layer_structure() {
        let gas = air9_equilibrium();
        let sol = solve(&gas, &shuttle_problem()).unwrap();
        // Real-gas standoff on a sphere: δ/Rn ≈ 0.03–0.10.
        let ratio = sol.standoff / 0.6;
        assert!(ratio > 0.02 && ratio < 0.15, "δ/Rn = {ratio}");
        // Edge temperature: equilibrium post-shock at 6.7 km/s ≈ 6000–7500 K.
        assert!(
            sol.t_edge > 5000.0 && sol.t_edge < 9000.0,
            "T_edge = {}",
            sol.t_edge
        );
        // Wall heat flux: 1e5–1e6 W/m² class.
        assert!(
            sol.q_conv > 2e4 && sol.q_conv < 2e6,
            "q_conv = {:.3e}",
            sol.q_conv
        );
        // Monotone temperature from wall to edge.
        let t_mid = sol.stations[sol.stations.len() / 2].temperature;
        assert!(t_mid > 1200.0 && t_mid < sol.t_edge * 1.05);
    }

    #[test]
    fn air_vsl_matches_fay_riddell_class() {
        let gas = air9_equilibrium();
        let problem = shuttle_problem();
        let sol = solve(&gas, &problem).unwrap();
        let q_sg = crate::blayer::sutton_graves(
            crate::blayer::SUTTON_GRAVES_EARTH,
            problem.rho_inf,
            problem.nose_radius,
            problem.u_inf,
        );
        let ratio = sol.q_conv / q_sg;
        assert!(ratio > 0.3 && ratio < 3.0, "q_VSL/q_SG = {ratio}");
    }

    #[test]
    fn species_recombine_at_cool_wall() {
        // Equilibrium chemistry: dissociated at the hot edge, recombined N2
        // near the 1200 K wall — the structure of the paper's Fig. 3.
        let gas = air9_equilibrium();
        let sol = solve(&gas, &shuttle_problem()).unwrap();
        let profile = sol.species_profile("N2");
        let x_wall = profile.first().unwrap().1;
        let x_edge = profile.last().unwrap().1;
        assert!(x_wall > 0.5, "N2 at wall: {x_wall}");
        // At 6.7 km/s the edge is hot enough to dissociate O2 fully and N2
        // partially.
        let o2 = sol.species_profile("O2");
        assert!(
            o2.last().unwrap().1 < 0.02,
            "O2 at edge: {}",
            o2.last().unwrap().1
        );
        assert!(x_edge < x_wall, "N2 must be depleted at the edge");
    }

    #[test]
    fn mass_balance_closed() {
        let gas = air9_equilibrium();
        let p = shuttle_problem();
        let sol = solve(&gas, &p).unwrap();
        // Recompute 2∫ρU dy from the stations.
        let mut mass = 0.0;
        for w in sol.stations.windows(2) {
            mass += (w[1].density * w[1].u_grad + w[0].density * w[0].u_grad) * (w[1].y - w[0].y);
        }
        let mdot = p.rho_inf * p.u_inf;
        assert!(
            (mass - mdot).abs() / mdot < 1e-3,
            "mass defect: {mass} vs {mdot}"
        );
    }

    #[test]
    fn titan_entry_layer_produces_cn() {
        // Titan probe at 12 km/s entry peak-heating-like condition: the
        // shock layer must contain CN (the paper's Fig. 3 radiator).
        let gas = titan_equilibrium(0.05);
        let problem = VslProblem {
            u_inf: 12_000.0,
            rho_inf: 4.0e-5,
            t_inf: 160.0,
            nose_radius: 0.6,
            t_wall: 1500.0,
            n_points: 40,
            radiating: true,
        };
        let sol = solve(&gas, &problem).unwrap();
        let cn = sol.species_profile("CN");
        let cn_max = cn.iter().map(|(_, x)| *x).fold(0.0, f64::max);
        assert!(cn_max > 1e-4, "CN peak mole fraction: {cn_max}");
        assert!(sol.q_rad_thin > 0.0);
        assert!(
            sol.standoff > 0.005 && sol.standoff < 0.2,
            "δ = {}",
            sol.standoff
        );
    }

    #[test]
    fn march_heating_tracks_lees_distribution() {
        // The downstream march over a hemisphere must reproduce the Lees
        // laminar heating falloff within engineering accuracy.
        let gas = air9_equilibrium();
        let problem = shuttle_problem();
        let body = aerothermo_grid::bodies::Hemisphere::new(problem.nose_radius);
        let stations = march(&gas, &problem, &body, 10).unwrap().stations;
        assert!(
            stations.len() >= 7,
            "stations converged: {}",
            stations.len()
        );

        let stag = solve(&gas, &problem).unwrap();
        for st in &stations {
            let theta = st.s / problem.nose_radius;
            if theta > 1.3 {
                continue; // Newtonian pressure degrades near the shoulder
            }
            let lees = crate::blayer::lees_hemisphere_ratio(theta);
            let ratio = st.q_conv / stag.q_conv;
            assert!(
                (ratio - lees).abs() < 0.35,
                "θ = {theta:.2}: march q/q0 = {ratio:.3}, Lees = {lees:.3}"
            );
        }
        // Layer thickens away from the stagnation point.
        assert!(
            stations.last().unwrap().delta > stations[0].delta,
            "δ must grow downstream"
        );
        // Edge velocity grows toward the shoulder.
        assert!(stations.last().unwrap().u_edge > stations[0].u_edge);
    }

    #[test]
    fn thicker_layer_for_larger_nose() {
        let gas = air9_equilibrium();
        let mut p = shuttle_problem();
        let sol1 = solve(&gas, &p).unwrap();
        p.nose_radius = 1.2;
        let sol2 = solve(&gas, &p).unwrap();
        let r = sol2.standoff / sol1.standoff;
        assert!((r - 2.0).abs() < 0.4, "standoff should scale with Rn: {r}");
    }
}
