//! Parabolized Navier-Stokes (PNS) space marching.
//!
//! When the inviscid streamwise flow is supersonic and there is no flow
//! reversal, the steady equations parabolize: the solution can be *marched*
//! station by station along the body at a fraction of the cost of a full NS
//! relaxation — the paper's slender-body workhorse (its Fig. 6 windward
//! heating came from such a code). Two classic ingredients:
//!
//! * **Vigneron splitting** — inside the subsonic wall layer only the
//!   fraction `ω = min(1, σγM_ξ²/(1+(γ−1)M_ξ²))` of the streamwise pressure
//!   is retained in the marching flux, keeping the march well-posed,
//! * **station relaxation** — each cross-flow column is converged by local
//!   pseudo-time iteration with the upstream column frozen (single sweep).
//!
//! The cross-flow (j) discretization reuses the AUSM+ machinery of
//! [`crate::euler2d`] plus thin-layer viscous terms, so PNS heating is
//! directly comparable with the full-NS result.

use crate::euler2d::{EulerOptions, Primitive, NEQ};
use crate::ns2d::Transport;
use aerothermo_gas::GasModel;
use aerothermo_grid::{Geometry, Metrics, StructuredGrid};
use aerothermo_numerics::telemetry::{RunTelemetry, SolverError};
use aerothermo_numerics::{trace, Field3};

/// PNS options.
#[derive(Debug, Clone)]
pub struct PnsOptions {
    /// Pseudo-time CFL for the station relaxation.
    pub cfl: f64,
    /// Maximum pseudo-time iterations per station.
    pub max_station_iters: usize,
    /// Relative residual drop per station.
    pub station_tol: f64,
    /// Vigneron safety factor σ.
    pub sigma: f64,
    /// Isothermal wall temperature \[K\]; `None` = inviscid march.
    pub t_wall: Option<f64>,
}

impl Default for PnsOptions {
    fn default() -> Self {
        Self {
            cfl: 0.35,
            max_station_iters: 4000,
            station_tol: 1e-6,
            sigma: 0.85,
            t_wall: None,
        }
    }
}

/// Result of a PNS march.
#[derive(Debug, Clone, Default)]
pub struct PnsSolution {
    /// Arc-length-ish station coordinate: x of the wall-cell centroid.
    pub station_x: Vec<f64>,
    /// Wall pressure per station \[Pa\].
    pub wall_pressure: Vec<f64>,
    /// Wall heat flux per station \[W/m²\] (0 for inviscid marches).
    pub wall_heat_flux: Vec<f64>,
    /// Iterations used per station.
    pub iterations: Vec<usize>,
}

/// PNS marching solver bound to a grid and gas model.
pub struct PnsSolver<'a> {
    grid: &'a StructuredGrid,
    metrics: Metrics,
    gas: &'a dyn GasModel,
    transport: Transport,
    opts: PnsOptions,
    freestream: (f64, f64, f64, f64),
    /// Conserved state for all cells (station columns filled as the march
    /// proceeds).
    pub u: Field3<f64>,
    /// Next station the march will relax (run-control cursor).
    next_station: usize,
    /// Wall data accumulated by the march so far.
    solution: PnsSolution,
    /// Run-control CFL scale (1.0 = nominal; halved on rollback).
    cfl_scale: f64,
    /// Run observability: phase timings, per-station iteration history,
    /// counter deltas.
    pub telemetry: RunTelemetry,
}

impl<'a> PnsSolver<'a> {
    /// Create a marching solver; all columns start at the freestream
    /// `(ρ, u_x, u_r, p)` (the usual sharp-body starter).
    #[must_use]
    pub fn new(
        grid: &'a StructuredGrid,
        gas: &'a dyn GasModel,
        opts: PnsOptions,
        freestream: (f64, f64, f64, f64),
    ) -> Self {
        let (rho, ux, ur, p) = freestream;
        let e = gas.energy(rho, p);
        let mut u = Field3::zeros(grid.nci(), grid.ncj(), NEQ);
        for i in 0..grid.nci() {
            for j in 0..grid.ncj() {
                let c = u.vector_mut(i, j);
                c[0] = rho;
                c[1] = rho * ux;
                c[2] = rho * ur;
                c[3] = rho * (e + 0.5 * (ux * ux + ur * ur));
            }
        }
        let metrics = Metrics::new(grid);
        Self {
            grid,
            metrics,
            gas,
            transport: Transport::air(),
            opts,
            freestream,
            u,
            next_station: 1,
            solution: PnsSolution::default(),
            cfl_scale: 1.0,
            telemetry: RunTelemetry::new(),
        }
    }

    /// Replace the starter column at station `i` with primitive states (one
    /// per j cell) — e.g. extracted from a nose NS/VSL solution.
    ///
    /// # Panics
    /// Panics when the column length mismatches.
    pub fn set_station(&mut self, i: usize, column: &[Primitive]) {
        assert_eq!(column.len(), self.grid.ncj());
        for (j, q) in column.iter().enumerate() {
            let e = self.gas.energy(q.rho, q.p);
            let c = self.u.vector_mut(i, j);
            c[0] = q.rho;
            c[1] = q.rho * q.ux;
            c[2] = q.rho * q.ur;
            c[3] = q.rho * (e + 0.5 * (q.ux * q.ux + q.ur * q.ur));
        }
    }

    fn primitive_of(&self, c: &[f64]) -> Primitive {
        let rho = c[0].max(1e-12);
        let ux = c[1] / rho;
        let ur = c[2] / rho;
        let e_tot = c[3] / rho;
        let e = (e_tot - 0.5 * (ux * ux + ur * ur)).max(1e-6 * e_tot.abs().max(1e-300));
        let p = self.gas.pressure(rho, e).max(1e-8);
        let a = self.gas.sound_speed(rho, e).max(1.0);
        Primitive {
            rho,
            ux,
            ur,
            p,
            a,
            h0: e + p / rho + 0.5 * (ux * ux + ur * ur),
        }
    }

    /// Primitive state of a cell.
    #[must_use]
    pub fn primitive(&self, i: usize, j: usize) -> Primitive {
        self.primitive_of(self.u.vector(i, j))
    }

    fn temperature(&self, q: &Primitive) -> f64 {
        let e = self.gas.energy(q.rho, q.p);
        self.gas.temperature(q.rho, e)
    }

    /// Vigneron-weighted streamwise flux through an i-face with
    /// area-weighted normal `(sx, sr)`, fully upwinded on the given state.
    fn vigneron_flux(&self, q: &Primitive, sx: f64, sr: f64) -> [f64; NEQ] {
        let area = (sx * sx + sr * sr).sqrt().max(1e-300);
        let nx = sx / area;
        let nr = sr / area;
        let un = q.ux * nx + q.ur * nr;
        let m_xi = un / q.a;
        let gamma = self.gas.gamma_eff(q.rho, self.gas.energy(q.rho, q.p));
        let omega = if m_xi >= 1.0 {
            1.0
        } else {
            (self.opts.sigma * gamma * m_xi * m_xi / (1.0 + (gamma - 1.0) * m_xi * m_xi)).min(1.0)
        };
        let pv = omega * q.p;
        let mdot = q.rho * un;
        [
            mdot * area,
            (mdot * q.ux + pv * nx) * area,
            (mdot * q.ur + pv * nr) * area,
            (mdot * q.h0) * area,
        ]
    }

    /// AUSM+ cross-flow flux (delegates to the Euler solver's kernel shape;
    /// reimplemented here to avoid borrowing gymnastics).
    fn ausm_flux(left: &Primitive, right: &Primitive, sx: f64, sr: f64) -> [f64; NEQ] {
        // Same AUSM+ as euler2d.
        let area = (sx * sx + sr * sr).sqrt().max(1e-300);
        let nx = sx / area;
        let nr = sr / area;
        let unl = left.ux * nx + left.ur * nr;
        let unr = right.ux * nx + right.ur * nr;
        let a_half = 0.5 * (left.a + right.a);
        let ml = unl / a_half;
        let mr = unr / a_half;
        let m4p = |m: f64| {
            if m.abs() >= 1.0 {
                0.5 * (m + m.abs())
            } else {
                let s = m * m - 1.0;
                0.25 * (m + 1.0) * (m + 1.0) + 0.125 * s * s
            }
        };
        let m4m = |m: f64| {
            if m.abs() >= 1.0 {
                0.5 * (m - m.abs())
            } else {
                let s = m * m - 1.0;
                -0.25 * (m - 1.0) * (m - 1.0) - 0.125 * s * s
            }
        };
        let p5p = |m: f64| {
            if m.abs() >= 1.0 {
                0.5 * (1.0 + m.signum())
            } else {
                let s = m * m - 1.0;
                0.25 * (m + 1.0) * (m + 1.0) * (2.0 - m) + 0.1875 * m * s * s
            }
        };
        let p5m = |m: f64| {
            if m.abs() >= 1.0 {
                0.5 * (1.0 - m.signum())
            } else {
                let s = m * m - 1.0;
                0.25 * (m - 1.0) * (m - 1.0) * (2.0 + m) - 0.1875 * m * s * s
            }
        };
        let m_half = m4p(ml) + m4m(mr);
        let p_half = p5p(ml) * left.p + p5m(mr) * right.p;
        let mdot = a_half * (m_half.max(0.0) * left.rho + m_half.min(0.0) * right.rho);
        let psi = if mdot >= 0.0 {
            [1.0, left.ux, left.ur, left.h0]
        } else {
            [1.0, right.ux, right.ur, right.h0]
        };
        [
            mdot * psi[0] * area,
            (mdot * psi[1] + p_half * nx) * area,
            (mdot * psi[2] + p_half * nr) * area,
            mdot * psi[3] * area,
        ]
    }

    /// Residual of cell (i, j) during the station-i relaxation: upstream
    /// i-flux frozen from column i−1, downstream i-flux upwinded on the
    /// local cell, AUSM + viscous in j.
    #[allow(clippy::too_many_lines)]
    fn station_residual(&self, i: usize, j: usize, col: &[Primitive]) -> [f64; NEQ] {
        let m = &self.metrics;
        let ncj = self.grid.ncj();
        let mut res = [0.0; NEQ];
        let qc = col[j];

        // Upstream face (i): Vigneron flux of the frozen upstream cell.
        {
            let sx = m.si_x[(i, j)];
            let sr = m.si_r[(i, j)];
            let qu = self.primitive(i - 1, j);
            let f = self.vigneron_flux(&qu, sx, sr);
            for k in 0..NEQ {
                res[k] += f[k];
            }
        }
        // Downstream face (i+1): Vigneron flux of the current cell.
        {
            let sx = m.si_x[(i + 1, j)];
            let sr = m.si_r[(i + 1, j)];
            let f = self.vigneron_flux(&qc, sx, sr);
            for k in 0..NEQ {
                res[k] -= f[k];
            }
        }
        // Cross-flow faces.
        {
            let sx = m.sj_x[(i, j)];
            let sr = m.sj_r[(i, j)];
            let f = if j == 0 {
                // Slip wall for the inviscid part.
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let nx = -sx / area;
                let nr = -sr / area;
                let un = qc.ux * nx + qc.ur * nr;
                let ghost = Primitive {
                    ux: qc.ux - 2.0 * un * nx,
                    ur: qc.ur - 2.0 * un * nr,
                    ..qc
                };
                Self::ausm_flux(&ghost, &qc, sx, sr)
            } else {
                Self::ausm_flux(&col[j - 1], &qc, sx, sr)
            };
            for k in 0..NEQ {
                res[k] += f[k];
            }
        }
        {
            let sx = m.sj_x[(i, j + 1)];
            let sr = m.sj_r[(i, j + 1)];
            let f = if j + 1 == ncj {
                // Outer boundary: freestream inflow.
                let (rho, ux, ur, p) = self.freestream;
                let e = self.gas.energy(rho, p);
                let ghost = Primitive {
                    rho,
                    ux,
                    ur,
                    p,
                    a: self.gas.sound_speed(rho, e).max(1.0),
                    h0: e + p / rho + 0.5 * (ux * ux + ur * ur),
                };
                Self::ausm_flux(&qc, &ghost, sx, sr)
            } else {
                Self::ausm_flux(&qc, &col[j + 1], sx, sr)
            };
            for k in 0..NEQ {
                res[k] -= f[k];
            }
        }

        // Thin-layer viscous terms in j (only when a wall temperature is
        // set). Signs: dU/dt·V = −∮F·n̂ + ∮G·n̂.
        if let Some(t_wall) = self.opts.t_wall {
            let face_g = |ql: &Primitive,
                          tl: f64,
                          qr: &Primitive,
                          tr: f64,
                          dn: f64,
                          sx: f64,
                          sr: f64,
                          u_face: Option<(f64, f64)>|
             -> [f64; NEQ] {
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let nx = sx / area;
                let nr = sr / area;
                let t_face = 0.5 * (tl + tr);
                let mu = (self.transport.viscosity)(t_face);
                let kcond = self.transport.conductivity(t_face);
                let dudn = (qr.ux - ql.ux) / dn;
                let dvdn = (qr.ur - ql.ur) / dn;
                let dtdn = (tr - tl) / dn;
                let dundn = dudn * nx + dvdn * nr;
                let tau_x = mu * (dudn + dundn * nx / 3.0);
                let tau_r = mu * (dvdn + dundn * nr / 3.0);
                let (ufx, ufr) = u_face.unwrap_or((0.5 * (ql.ux + qr.ux), 0.5 * (ql.ur + qr.ur)));
                [
                    0.0,
                    tau_x * area,
                    tau_r * area,
                    (tau_x * ufx + tau_r * ufr + kcond * dtdn) * area,
                ]
            };
            let tc = self.temperature(&qc);
            // Bottom face.
            {
                let sx = m.sj_x[(i, j)];
                let sr = m.sj_r[(i, j)];
                let g = if j == 0 {
                    let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                    let nx = sx / area;
                    let nr = sr / area;
                    let wx = 0.5 * (self.grid.x[(i, 0)] + self.grid.x[(i + 1, 0)]);
                    let wr = 0.5 * (self.grid.r[(i, 0)] + self.grid.r[(i + 1, 0)]);
                    let dn = ((m.xc[(i, 0)] - wx) * nx + (m.rc[(i, 0)] - wr) * nr)
                        .abs()
                        .max(1e-12);
                    let wall = Primitive {
                        ux: 0.0,
                        ur: 0.0,
                        ..qc
                    };
                    face_g(&wall, t_wall, &qc, tc, dn, sx, sr, Some((0.0, 0.0)))
                } else {
                    let ql = col[j - 1];
                    let tl = self.temperature(&ql);
                    let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                    let nx = sx / area;
                    let nr = sr / area;
                    let dn = ((m.xc[(i, j)] - m.xc[(i, j - 1)]) * nx
                        + (m.rc[(i, j)] - m.rc[(i, j - 1)]) * nr)
                        .abs()
                        .max(1e-12);
                    face_g(&ql, tl, &qc, tc, dn, sx, sr, None)
                };
                for k in 0..NEQ {
                    res[k] -= g[k];
                }
            }
            // Top face.
            if j + 1 < ncj {
                let sx = m.sj_x[(i, j + 1)];
                let sr = m.sj_r[(i, j + 1)];
                let qr = col[j + 1];
                let tr = self.temperature(&qr);
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let nx = sx / area;
                let nr = sr / area;
                let dn = ((m.xc[(i, j + 1)] - m.xc[(i, j)]) * nx
                    + (m.rc[(i, j + 1)] - m.rc[(i, j)]) * nr)
                    .abs()
                    .max(1e-12);
                let g = face_g(&qc, tc, &qr, tr, dn, sx, sr, None);
                for k in 0..NEQ {
                    res[k] += g[k];
                }
            }
        }

        if self.grid.geometry == Geometry::Axisymmetric {
            res[2] += qc.p * m.plane_area[(i, j)];
        }
        res
    }

    /// Relax station `i` to convergence; returns iterations used.
    fn relax_station(&mut self, i: usize) -> usize {
        let _sp = trace::span("pns_station");
        let ncj = self.grid.ncj();
        let mut ref_res = f64::NAN;
        for it in 0..self.opts.max_station_iters {
            let col: Vec<Primitive> = (0..ncj).map(|j| self.primitive(i, j)).collect();
            let mut resnorm = 0.0_f64;
            let mut updates = Vec::with_capacity(ncj);
            for j in 0..ncj {
                let res = self.station_residual(i, j, &col);
                // Local pseudo-time step.
                let q = &col[j];
                let m = &self.metrics;
                let spectral = |sx: f64, sr: f64| -> f64 {
                    let area = (sx * sx + sr * sr).sqrt();
                    (q.ux * sx + q.ur * sr).abs() + q.a * area
                };
                let mut lam = spectral(m.si_x[(i, j)], m.si_r[(i, j)])
                    + spectral(m.si_x[(i + 1, j)], m.si_r[(i + 1, j)])
                    + spectral(m.sj_x[(i, j)], m.sj_r[(i, j)])
                    + spectral(m.sj_x[(i, j + 1)], m.sj_r[(i, j + 1)]);
                if self.opts.t_wall.is_some() {
                    let t = self.temperature(q);
                    let mu = (self.transport.viscosity)(t);
                    let sj = {
                        let sx = m.sj_x[(i, j)];
                        let sr = m.sj_r[(i, j)];
                        (sx * sx + sr * sr).sqrt()
                    };
                    lam += 4.0 * mu / q.rho * sj * sj / m.volume[(i, j)];
                }
                let dt = self.cfl_scale * self.opts.cfl * m.volume[(i, j)] / lam.max(1e-300);
                resnorm += (res[0] / m.volume[(i, j)]).powi(2);
                updates.push((res, dt));
            }
            for (j, (res, dt)) in updates.into_iter().enumerate() {
                let v = self.metrics.volume[(i, j)];
                let cell = self.u.vector_mut(i, j);
                for k in 0..NEQ {
                    cell[k] += dt / v * res[k];
                }
                if cell[0] < 1e-12 {
                    cell[0] = 1e-12;
                }
            }
            let resnorm = (resnorm / ncj as f64).sqrt();
            if it == 10 {
                ref_res = resnorm.max(1e-300);
            }
            if ref_res.is_finite() && resnorm / ref_res < self.opts.station_tol {
                return it + 1;
            }
        }
        self.opts.max_station_iters
    }

    /// March stations `i_start..nci`, columns before `i_start` taken as
    /// given (freestream or user starter). Returns per-station wall data.
    ///
    /// A station that merely exhausts its relaxation budget is tolerated
    /// (the iteration count is recorded in the solution and telemetry); the
    /// march only aborts on state contamination.
    ///
    /// # Errors
    /// [`SolverError::NonFinite`] with the first affected cell when NaN/Inf
    /// appears in a relaxed station column.
    pub fn march(&mut self, i_start: usize) -> Result<PnsSolution, SolverError> {
        let t0 = std::time::Instant::now();
        let nci = self.grid.nci();
        self.next_station = i_start.max(1);
        self.solution = PnsSolution::default();
        let mut failure: Option<SolverError> = None;
        while self.next_station < nci {
            if let Err(e) = self.advance_station() {
                failure = Some(e);
                break;
            }
        }
        self.telemetry
            .add_phase_secs("pns_march", t0.elapsed().as_secs_f64());
        self.telemetry.record_history(
            "station_iterations",
            self.solution.iterations.iter().map(|&n| n as f64).collect(),
        );
        match failure {
            Some(e) => Err(e),
            None => Ok(self.solution.clone()),
        }
    }

    /// Relax the next station and append its wall data to the accumulated
    /// solution. Returns the relaxation iteration count for the station.
    ///
    /// # Errors
    /// [`SolverError::NonFinite`] on state contamination; audit failures as
    /// surfaced by [`crate::audit::apply`].
    pub fn advance_station(&mut self) -> Result<usize, SolverError> {
        let i = self.next_station;
        // Initialize from the upstream column (marching continuation).
        for j in 0..self.grid.ncj() {
            let up: Vec<f64> = self.u.vector(i - 1, j).to_vec();
            self.u.vector_mut(i, j).copy_from_slice(&up);
        }
        let iters = self.relax_station(i);
        const FIELD_NAMES: [&str; NEQ] = ["rho", "rho_ux", "rho_ur", "rho_E"];
        for j in 0..self.grid.ncj() {
            let cell = self.u.vector(i, j);
            for (k, name) in FIELD_NAMES.iter().enumerate() {
                if !cell[k].is_finite() {
                    return Err(SolverError::NonFinite { field: name, i, j });
                }
            }
        }
        if crate::audit::due(i) {
            let findings = crate::audit::station_positivity(&self.u, i, i);
            crate::audit::apply(&mut self.telemetry, findings)?;
        }
        let q0 = self.primitive(i, 0);
        self.solution.station_x.push(self.metrics.xc[(i, 0)]);
        self.solution.wall_pressure.push(q0.p);
        self.solution.wall_heat_flux.push(self.wall_heat_flux(i));
        self.solution.iterations.push(iters);
        self.next_station = i + 1;
        Ok(iters)
    }

    /// Wall data accumulated by the march so far.
    #[must_use]
    pub fn solution(&self) -> &PnsSolution {
        &self.solution
    }

    /// Snapshot the march state: the conserved field plus the accumulated
    /// wall rows (4 values per completed station), cursor in `step`.
    #[must_use]
    pub fn save_state(&self) -> crate::runctl::Snapshot {
        let mut data = self.u.as_slice().to_vec();
        for k in 0..self.solution.station_x.len() {
            data.push(self.solution.station_x[k]);
            data.push(self.solution.wall_pressure[k]);
            data.push(self.solution.wall_heat_flux[k]);
            data.push(self.solution.iterations[k] as f64);
        }
        crate::runctl::Snapshot {
            step: self.next_station,
            cfl_scale: self.cfl_scale,
            data,
        }
    }

    /// Restore a snapshot taken by [`PnsSolver::save_state`].
    ///
    /// # Errors
    /// [`SolverError::BadInput`] when the payload shape does not match this
    /// solver's field plus a whole number of wall rows.
    pub fn restore_state(&mut self, snap: &crate::runctl::Snapshot) -> Result<(), SolverError> {
        let field_len = self.u.as_slice().len();
        if snap.data.len() < field_len || !(snap.data.len() - field_len).is_multiple_of(4) {
            return Err(SolverError::BadInput(format!(
                "pns restore: state length {} incompatible with field length {field_len}",
                snap.data.len()
            )));
        }
        self.u
            .as_mut_slice()
            .copy_from_slice(&snap.data[..field_len]);
        let rows = (snap.data.len() - field_len) / 4;
        self.solution = PnsSolution::default();
        for row in snap.data[field_len..].chunks_exact(4) {
            self.solution.station_x.push(row[0]);
            self.solution.wall_pressure.push(row[1]);
            self.solution.wall_heat_flux.push(row[2]);
            self.solution.iterations.push(row[3] as usize);
        }
        debug_assert_eq!(self.solution.station_x.len(), rows);
        self.next_station = snap.step;
        self.cfl_scale = snap.cfl_scale;
        Ok(())
    }

    /// Wall heat flux at station `i` \[W/m²\] (0 for inviscid marches).
    #[must_use]
    pub fn wall_heat_flux(&self, i: usize) -> f64 {
        let Some(t_wall) = self.opts.t_wall else {
            return 0.0;
        };
        let m = &self.metrics;
        let sx = m.sj_x[(i, 0)];
        let sr = m.sj_r[(i, 0)];
        let area = (sx * sx + sr * sr).sqrt().max(1e-300);
        let nx = sx / area;
        let nr = sr / area;
        let wx = 0.5 * (self.grid.x[(i, 0)] + self.grid.x[(i + 1, 0)]);
        let wr = 0.5 * (self.grid.r[(i, 0)] + self.grid.r[(i + 1, 0)]);
        let dn = ((m.xc[(i, 0)] - wx) * nx + (m.rc[(i, 0)] - wr) * nr)
            .abs()
            .max(1e-12);
        let q = self.primitive(i, 0);
        let t1 = self.temperature(&q);
        let k = self.transport.conductivity(0.5 * (t1 + t_wall));
        k * (t1 - t_wall) / dn
    }

    /// Extract a starter column from an Euler/NS field at station `i` of a
    /// matching grid.
    #[must_use]
    pub fn column_from_euler(solver: &crate::euler2d::EulerSolver<'_>, i: usize) -> Vec<Primitive> {
        (0..solver.ncj()).map(|j| solver.primitive(i, j)).collect()
    }

    /// Default Euler-style options bridge (CFL reuse).
    #[must_use]
    pub fn options_from_euler(opts: &EulerOptions) -> PnsOptions {
        PnsOptions {
            cfl: opts.cfl,
            ..PnsOptions::default()
        }
    }
}

impl crate::runctl::Steppable for PnsSolver<'_> {
    fn advance(&mut self) -> Result<f64, SolverError> {
        if self.next_station >= self.grid.nci() {
            return Ok(0.0);
        }
        self.advance_station()?;
        // Stations either converge or exhaust a bounded budget; the
        // controller's progress unit is the station itself, so report a flat
        // residual and let the non-finite/audit checks drive rollback.
        Ok(1.0)
    }

    fn progress(&self) -> usize {
        self.next_station
    }

    fn save_state(&self) -> crate::runctl::Snapshot {
        self.save_state()
    }

    fn restore_state(&mut self, snap: &crate::runctl::Snapshot) -> Result<(), SolverError> {
        self.restore_state(snap)
    }

    fn cfl_scale(&self) -> f64 {
        self.cfl_scale
    }

    fn set_cfl_scale(&mut self, scale: f64) {
        self.cfl_scale = scale;
    }

    fn meta(&self) -> crate::runctl::RunMeta {
        crate::runctl::RunMeta {
            tag: "pns".to_string(),
            gas: self.gas.describe(),
            shape: self.u.shape(),
        }
    }

    fn telemetry_mut(&mut self) -> &mut RunTelemetry {
        &mut self.telemetry
    }

    fn finalize(&mut self, _converged: bool) -> Result<(), SolverError> {
        if crate::audit::cadence() != 0 && self.next_station > 1 {
            let findings = crate::audit::station_positivity(&self.u, 1, self.next_station - 1);
            crate::audit::apply(&mut self.telemetry, findings)?;
        }
        self.telemetry.record_history(
            "station_iterations",
            self.solution.iterations.iter().map(|&n| n as f64).collect(),
        );
        Ok(())
    }

    fn poison(&mut self) {
        // Contaminate the upstream column the next station will copy from,
        // so the very next advance trips the non-finite scan.
        let i = self.next_station.saturating_sub(1);
        let j = self.grid.ncj() / 2;
        self.u.vector_mut(i, j)[0] = f64::NAN;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerothermo_gas::IdealGas;
    use aerothermo_grid::bodies::SphereCone;
    use aerothermo_grid::stretch;

    fn cone_grid(half_angle_deg: f64, length: f64, ni: usize, nj: usize) -> StructuredGrid {
        let body = SphereCone {
            rn: 0.01,
            half_angle: half_angle_deg.to_radians(),
            length,
        };
        let dist = stretch::tanh_one_sided(nj, 2.5);
        StructuredGrid::blunt_body(&body, ni, nj, &|sb| 0.02 + 0.35 * sb * length, &dist)
    }

    #[test]
    fn cone_surface_pressure_near_taylor_maccoll() {
        // 15° sharp-ish cone at M∞ = 8: Taylor-Maccoll gives β = 17.93°,
        // p_c/p∞ = 7.55, surface Cp = 0.1461 (computed by integrating the
        // Taylor-Maccoll equation for these exact conditions).
        let gas = IdealGas::air();
        let t_inf = 220.0;
        let p_inf = 500.0;
        let rho_inf = p_inf / (287.05 * t_inf);
        let a_inf = (1.4_f64 * 287.05 * t_inf).sqrt();
        let v_inf = 8.0 * a_inf;
        let grid = cone_grid(15.0, 1.5, 90, 40);
        let mut solver = PnsSolver::new(
            &grid,
            &gas,
            PnsOptions {
                t_wall: None,
                ..PnsOptions::default()
            },
            (rho_inf, v_inf, 0.0, p_inf),
        );
        let sol = solver.march(6).expect("clean march");
        // Use the last quarter of stations (conical asymptote).
        let nst = sol.wall_pressure.len();
        let p_cone: f64 =
            sol.wall_pressure[3 * nst / 4..].iter().sum::<f64>() / (nst - 3 * nst / 4) as f64;
        let cp = (p_cone - p_inf) / (0.5 * rho_inf * v_inf * v_inf);
        assert!(
            (cp - 0.1461).abs() < 0.015,
            "cone Cp = {cp:.4} (Taylor-Maccoll = 0.1461)"
        );
    }

    #[test]
    fn march_is_cheap_per_station() {
        // The whole point of PNS: station cost bounded; iterations should
        // decay once the conical flow is established.
        let gas = IdealGas::air();
        let t_inf = 220.0;
        let p_inf = 500.0;
        let rho_inf = p_inf / (287.05 * t_inf);
        let v_inf = 8.0 * (1.4_f64 * 287.05 * t_inf).sqrt();
        let grid = cone_grid(15.0, 1.0, 50, 30);
        let mut solver = PnsSolver::new(
            &grid,
            &gas,
            PnsOptions {
                t_wall: None,
                ..PnsOptions::default()
            },
            (rho_inf, v_inf, 0.0, p_inf),
        );
        let sol = solver.march(6).expect("clean march");
        let tail_iters = *sol.iterations.last().unwrap();
        assert!(
            tail_iters < solver.opts.max_station_iters,
            "station failed to converge"
        );
    }

    #[test]
    fn viscous_cone_heating_decays_downstream() {
        // Laminar cone heating ~ s^{-1/2}: the PNS wall heat flux must decay
        // monotonically (after the start-up stations) along the cone.
        let gas = IdealGas::air();
        let t_inf = 220.0;
        let p_inf = 2000.0;
        let rho_inf = p_inf / (287.05 * t_inf);
        let v_inf = 8.0 * (1.4_f64 * 287.05 * t_inf).sqrt();
        let grid = cone_grid(10.0, 1.2, 70, 44);
        let mut solver = PnsSolver::new(
            &grid,
            &gas,
            PnsOptions {
                t_wall: Some(300.0),
                ..PnsOptions::default()
            },
            (rho_inf, v_inf, 0.0, p_inf),
        );
        let sol = solver.march(8).expect("clean march");
        let n = sol.wall_heat_flux.len();
        let q_quarter = sol.wall_heat_flux[n / 4];
        let q_end = sol.wall_heat_flux[n - 1];
        assert!(q_quarter > 0.0 && q_end > 0.0, "heating must be positive");
        assert!(
            q_end < q_quarter,
            "heating should decay: {q_quarter:.3e} -> {q_end:.3e}"
        );
        // x^-1/2 scaling between the two probes, loosely.
        let x_q = sol.station_x[n / 4];
        let x_e = sol.station_x[n - 1];
        let expected = (x_q / x_e).sqrt(); // q ∝ x^{-1/2}
        let actual = q_end / q_quarter;
        assert!(
            (actual / expected - 1.0).abs() < 0.3,
            "decay exponent off: actual ratio {actual:.3}, x^-1/2 gives {expected:.3}"
        );
    }
}
