//! Normal-shock jump relations.
//!
//! Three levels of gas model, mirroring the paper's hierarchy:
//!
//! * perfect gas — closed-form relations,
//! * frozen mixture — composition and (optionally) vibrational energy held
//!   at their upstream values while translation/rotation equilibrate: the
//!   state immediately behind a strong shock, the initial condition of the
//!   relaxation solver,
//! * general [`GasModel`] — iterate the Rankine-Hugoniot system against any
//!   `(ρ, e)` equation of state, which covers tabulated equilibrium air.

use aerothermo_gas::thermo::Mixture;
use aerothermo_gas::GasModel;
use aerothermo_numerics::roots::{brent, RootError};

/// Jump state behind a normal shock.
#[derive(Debug, Clone, Copy)]
pub struct ShockState {
    /// Density \[kg/m³\].
    pub rho: f64,
    /// Pressure \[Pa\].
    pub p: f64,
    /// Flow speed in the shock frame \[m/s\].
    pub u: f64,
    /// Temperature \[K\].
    pub t: f64,
    /// Specific internal energy \[J/kg\] (model reference).
    pub e: f64,
}

/// Perfect-gas normal-shock relations for upstream Mach number `m1`.
/// Returns (p2/p1, ρ2/ρ1, T2/T1, M2).
///
/// # Panics
/// Panics for `m1 <= 1`.
#[must_use]
pub fn perfect_gas_jump(m1: f64, gamma: f64) -> (f64, f64, f64, f64) {
    assert!(m1 > 1.0, "shock requires supersonic upstream");
    let g = gamma;
    let p_ratio = 1.0 + 2.0 * g / (g + 1.0) * (m1 * m1 - 1.0);
    let rho_ratio = (g + 1.0) * m1 * m1 / ((g - 1.0) * m1 * m1 + 2.0);
    let t_ratio = p_ratio / rho_ratio;
    let m2 = (((g - 1.0) * m1 * m1 + 2.0) / (2.0 * g * m1 * m1 - (g - 1.0))).sqrt();
    (p_ratio, rho_ratio, t_ratio, m2)
}

/// Normal shock against a general `(ρ, e)` equation of state.
///
/// Given upstream `(rho1, p1, u1)` (shock frame), finds the downstream state
/// satisfying mass/momentum/energy conservation with `model`'s EOS, by a
/// bracketed solve on the density ratio.
///
/// # Errors
/// Fails when no density ratio in `[1.01, 50]` satisfies the system (e.g.
/// subsonic upstream).
pub fn normal_shock(
    model: &dyn GasModel,
    rho1: f64,
    p1: f64,
    u1: f64,
) -> Result<ShockState, RootError> {
    let e1 = model.energy(rho1, p1);
    let h1 = e1 + p1 / rho1;
    let mdot = rho1 * u1;
    let ptot = p1 + rho1 * u1 * u1;
    let htot = h1 + 0.5 * u1 * u1;

    // Residual in the density ratio r = ρ2/ρ1: from mass+momentum, p2 and
    // u2 follow; energy closes with the EOS enthalpy at (ρ2, e2).
    let f = |r: f64| -> f64 {
        let rho2 = rho1 * r;
        let u2 = u1 / r;
        let p2 = ptot - mdot * u2;
        let h2_target = htot - 0.5 * u2 * u2;
        let e2 = h2_target - p2 / rho2;
        // EOS pressure at (rho2, e2) must equal the momentum pressure.
        model.pressure(rho2, e2) - p2
    };
    let r = brent(f, 1.01, 50.0, 1e-10)?;
    let rho2 = rho1 * r;
    let u2 = u1 / r;
    let p2 = ptot - mdot * u2;
    let e2 = (htot - 0.5 * u2 * u2) - p2 / rho2;
    Ok(ShockState {
        rho: rho2,
        p: p2,
        u: u2,
        t: model.temperature(rho2, e2),
        e: e2,
    })
}

/// Oblique-shock relations for a perfect gas: given upstream Mach `m1` and
/// shock angle `beta`, returns `(deflection θ, p2/p1, ρ2/ρ1, M2)`.
///
/// # Panics
/// Panics when the normal Mach component is subsonic (no shock at this β).
#[must_use]
pub fn oblique_shock(m1: f64, beta: f64, gamma: f64) -> (f64, f64, f64, f64) {
    let mn1 = m1 * beta.sin();
    assert!(
        mn1 > 1.0,
        "normal Mach {mn1} subsonic: no shock at this angle"
    );
    let (p_ratio, rho_ratio, _, mn2) = perfect_gas_jump(mn1, gamma);
    let theta = (2.0 / beta.tan() * (m1 * m1 * beta.sin() * beta.sin() - 1.0)
        / (m1 * m1 * (gamma + (2.0 * beta).cos()) + 2.0))
        .atan();
    let m2 = mn2 / (beta - theta).sin();
    (theta, p_ratio, rho_ratio, m2)
}

/// Weak-solution shock angle β for a given flow deflection θ at Mach `m1`
/// (the attached-shock branch), found by bisection between the Mach angle
/// and the maximum-deflection angle.
///
/// # Errors
/// Fails when θ exceeds the maximum deflection (detached shock).
pub fn beta_from_theta(m1: f64, theta: f64, gamma: f64) -> Result<f64, RootError> {
    let beta_min = (1.0 / m1).asin() + 1e-9;
    // Find the β of maximum deflection by golden-section-ish scan.
    let mut beta_max_defl = beta_min;
    let mut max_defl = -1.0;
    let n = 400;
    for k in 0..=n {
        let b = beta_min
            + (std::f64::consts::FRAC_PI_2 - 1e-9 - beta_min) * f64::from(k) / f64::from(n);
        let (th, ..) = oblique_shock(m1, b, gamma);
        if th > max_defl {
            max_defl = th;
            beta_max_defl = b;
        }
    }
    if theta > max_defl {
        return Err(RootError::NoBracket {
            fa: theta,
            fb: max_defl,
        });
    }
    brent(
        |b| oblique_shock(m1, b, gamma).0 - theta,
        beta_min,
        beta_max_defl,
        1e-12,
    )
}

/// Frozen-chemistry, frozen-vibration shock jump for a mixture.
///
/// Composition `y` and the vibrational/electronic energy (held at the
/// upstream `t1`) pass through unchanged; translation and rotation jump.
/// This is the classic "frozen shock" initial condition for two-temperature
/// relaxation: the translational temperature immediately behind a 10 km/s
/// shock is enormous while T_v still equals the freestream temperature.
///
/// Returns the jump state; its `t` is the translational-rotational
/// temperature, with T_v = `t1` implied.
///
/// # Errors
/// Fails when the jump system has no solution in range.
pub fn frozen_shock(
    mix: &Mixture,
    y: &[f64],
    t1: f64,
    p1: f64,
    u1: f64,
) -> Result<ShockState, RootError> {
    let r_gas = mix.gas_constant(y);
    let rho1 = p1 / (r_gas * t1);
    let mdot = rho1 * u1;
    let ptot = p1 + rho1 * u1 * u1;
    // Frozen enthalpy: trans+rot at T, vib+elec frozen at t1.
    let h_frozen = |t: f64| -> f64 {
        let mut h = 0.0;
        for (sp, yi) in mix.species().iter().zip(y) {
            h += yi
                * (sp.e_trans(t)
                    + sp.e_rot(t)
                    + sp.e_vib(t1)
                    + sp.e_elec(t1)
                    + sp.e_formation()
                    + sp.gas_constant() * t);
        }
        h
    };
    let htot = h_frozen(t1) + 0.5 * u1 * u1;

    let f = |r: f64| -> f64 {
        let rho2 = rho1 * r;
        let u2 = u1 / r;
        let p2 = ptot - mdot * u2;
        let t2 = p2 / (rho2 * r_gas);
        h_frozen(t2) + 0.5 * u2 * u2 - htot
    };
    let r = brent(f, 1.05, 25.0, 1e-11)?;
    let rho2 = rho1 * r;
    let u2 = u1 / r;
    let p2 = ptot - mdot * u2;
    let t2 = p2 / (rho2 * r_gas);
    let e2 = h_frozen(t2) - p2 / rho2 - 0.0;
    Ok(ShockState {
        rho: rho2,
        p: p2,
        u: u2,
        t: t2,
        e: e2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerothermo_gas::species::{n2, o2};
    use aerothermo_gas::IdealGas;

    #[test]
    fn perfect_gas_textbook_values() {
        // M1 = 2, γ = 1.4: p2/p1 = 4.5, ρ2/ρ1 = 2.6667, M2 = 0.5774.
        let (p, r, t, m2) = perfect_gas_jump(2.0, 1.4);
        assert!((p - 4.5).abs() < 1e-12);
        assert!((r - 8.0 / 3.0).abs() < 1e-12);
        assert!((t - 4.5 / (8.0 / 3.0)).abs() < 1e-12);
        assert!((m2 - 0.577_350_269).abs() < 1e-8);
    }

    #[test]
    fn strong_shock_density_limit() {
        // ρ2/ρ1 → (γ+1)/(γ−1) = 6 as M → ∞ for γ = 1.4.
        let (_, r, _, _) = perfect_gas_jump(200.0, 1.4);
        assert!((r - 6.0).abs() < 0.001, "r = {r}");
    }

    #[test]
    fn general_model_matches_closed_form_for_ideal_gas() {
        let gas = IdealGas::air();
        let t1 = 250.0;
        let p1 = 1000.0;
        let rho1 = p1 / (gas.r * t1);
        let a1 = (gas.gamma * gas.r * t1).sqrt();
        let m1 = 8.0;
        let st = normal_shock(&gas, rho1, p1, m1 * a1).unwrap();
        let (p_ratio, rho_ratio, t_ratio, _) = perfect_gas_jump(m1, 1.4);
        assert!((st.p / p1 - p_ratio).abs() / p_ratio < 1e-6);
        assert!((st.rho / rho1 - rho_ratio).abs() / rho_ratio < 1e-6);
        assert!((st.t / t1 - t_ratio).abs() / t_ratio < 1e-6);
    }

    #[test]
    fn mass_momentum_energy_conserved_across_general_shock() {
        let gas = IdealGas::effective_gamma(1.2);
        let rho1 = 1e-3;
        let p1 = 50.0;
        let u1 = 6000.0;
        let st = normal_shock(&gas, rho1, p1, u1).unwrap();
        assert!((rho1 * u1 - st.rho * st.u).abs() / (rho1 * u1) < 1e-9);
        let mom1 = p1 + rho1 * u1 * u1;
        let mom2 = st.p + st.rho * st.u * st.u;
        assert!((mom1 - mom2).abs() / mom1 < 1e-9);
        let h1 = gas.enthalpy(rho1, gas.energy(rho1, p1)) + 0.5 * u1 * u1;
        let h2 = st.e + st.p / st.rho + 0.5 * st.u * st.u;
        assert!((h1 - h2).abs() / h1 < 1e-9);
    }

    #[test]
    fn frozen_shock_huge_translational_temperature() {
        // 10 km/s into 300 K air at 13.3 Pa (the paper's Fig. 7 condition):
        // frozen T2 is tens of thousands of kelvin.
        let mix = Mixture::new(vec![n2(), o2()]);
        let y = [0.767, 0.233];
        let st = frozen_shock(&mix, &y, 300.0, 13.3, 10_000.0).unwrap();
        assert!(st.t > 35_000.0 && st.t < 70_000.0, "T2 = {}", st.t);
        // Density ratio approaches the γ_eff limit ~6.
        let rho1 = 13.3 / (mix.gas_constant(&y) * 300.0);
        let r = st.rho / rho1;
        assert!(r > 5.0 && r < 8.0, "rho ratio = {r}");
    }

    #[test]
    fn frozen_shock_conserves_fluxes() {
        let mix = Mixture::new(vec![n2(), o2()]);
        let y = [0.767, 0.233];
        let t1 = 300.0;
        let p1 = 13.3;
        let u1 = 10_000.0;
        let rho1 = p1 / (mix.gas_constant(&y) * t1);
        let st = frozen_shock(&mix, &y, t1, p1, u1).unwrap();
        assert!((rho1 * u1 - st.rho * st.u).abs() / (rho1 * u1) < 1e-8);
        let mom1 = p1 + rho1 * u1 * u1;
        assert!((mom1 - st.p - st.rho * st.u * st.u).abs() / mom1 < 1e-8);
    }

    #[test]
    fn oblique_shock_textbook_case() {
        // M1 = 3, β = 40°, γ = 1.4: θ ≈ 22°, M2 ≈ 1.9 (NACA 1135 charts).
        let (theta, p_ratio, _, m2) = oblique_shock(3.0, 40f64.to_radians(), 1.4);
        assert!(
            (theta.to_degrees() - 22.0).abs() < 0.5,
            "θ = {}",
            theta.to_degrees()
        );
        assert!((m2 - 1.9).abs() < 0.07, "M2 = {m2}");
        // Normal-component pressure ratio at Mn1 = 3 sin40° = 1.928: 4.17.
        assert!((p_ratio - 4.17).abs() < 0.05, "p2/p1 = {p_ratio}");
    }

    #[test]
    fn beta_theta_roundtrip() {
        for (m1, theta_deg) in [(2.0, 10.0_f64), (5.0, 20.0), (10.0, 30.0)] {
            let theta = theta_deg.to_radians();
            let beta = beta_from_theta(m1, theta, 1.4).unwrap();
            let (th_back, ..) = oblique_shock(m1, beta, 1.4);
            assert!((th_back - theta).abs() < 1e-9, "M{m1} θ{theta_deg}");
            // Weak solution: β below ~65° for these cases.
            assert!(beta < 70f64.to_radians());
        }
    }

    #[test]
    fn detached_shock_detected() {
        // 50° wedge at Mach 2 exceeds the max deflection (~23°).
        assert!(beta_from_theta(2.0, 50f64.to_radians(), 1.4).is_err());
    }

    #[test]
    fn mach_angle_limit() {
        // As θ → 0 the weak shock tends to the Mach wave: β → asin(1/M).
        let beta = beta_from_theta(4.0, 0.001f64.to_radians(), 1.4).unwrap();
        assert!((beta - (1.0_f64 / 4.0).asin()).abs() < 0.01, "β = {beta}");
    }

    #[test]
    fn subsonic_upstream_rejected() {
        let gas = IdealGas::air();
        let rho1 = 1.2;
        let p1 = 101_325.0;
        // u = 100 m/s ≪ a: no shock solution.
        assert!(normal_shock(&gas, rho1, p1, 100.0).is_err());
    }
}
