//! Solver flight recorder: a fixed-capacity ring of per-step records
//! dumped as a post-mortem JSON "black box" when a run dies.
//!
//! [`crate::runctl::run_controlled`] feeds one [`StepRecord`] per advance
//! attempt into a [`FlightRecorder`]; when a
//! [`SolverError`](aerothermo_numerics::telemetry::SolverError) escapes
//! the retry budget — or a `--inject-nan` drill fires — the recorder's
//! last-N window becomes a [`PostMortem`]: exactly the context a
//! post-incident triage needs (what the residual and CFL were doing, when
//! rollbacks happened, whether the equilibrium cache was still hitting,
//! what the audits said) without logging every step of a healthy run.
//!
//! The dump is plain JSON (`schema: aerothermo-blackbox-v1`) so the sweep
//! engine can attach it to failed case records and CI can upload it as an
//! artifact.

use aerothermo_numerics::telemetry::{counters, AuditSeverity, Counter};
use std::collections::VecDeque;
use std::path::Path;

/// Default ring capacity: enough history to see the divergence build and
/// the rollbacks that failed to contain it, small enough to embed in a
/// sweep case record.
pub const DEFAULT_CAPACITY: usize = 64;

/// What happened on one advance attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum StepEvent {
    /// A clean step.
    Advance,
    /// A checkpoint was written after this step.
    Checkpoint,
    /// The fault-injection drill poisoned the state after this step.
    Inject,
    /// The step failed and the controller rolled back (retry `retry`),
    /// with the solver error's display text.
    Rollback {
        /// Retry index consumed by this rollback (1-based).
        retry: usize,
        /// Display text of the error that triggered the rollback.
        error: String,
    },
    /// The step failed terminally (budget exhausted or unrecoverable).
    Fatal {
        /// Display text of the escaping error.
        error: String,
    },
}

impl StepEvent {
    /// Stable snake_case tag used in the dump JSON.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            StepEvent::Advance => "advance",
            StepEvent::Checkpoint => "checkpoint",
            StepEvent::Inject => "inject",
            StepEvent::Rollback { .. } => "rollback",
            StepEvent::Fatal { .. } => "fatal",
        }
    }
}

/// One per-step record in the flight-recorder ring.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Progress units completed when the record was taken.
    pub unit: usize,
    /// Residual returned by the step (NaN for failed steps).
    pub residual: f64,
    /// CFL scale the step ran at.
    pub cfl_scale: f64,
    /// What happened.
    pub event: StepEvent,
    /// Equilibrium-cache hits attributed to this step (thread-local delta).
    pub cache_hits: u64,
    /// Equilibrium-cache misses attributed to this step.
    pub cache_misses: u64,
    /// Cumulative audit findings on the solver's telemetry after this step.
    pub audit_findings: usize,
    /// Worst audit severity seen so far, if any audit has fired.
    pub audit_worst: Option<AuditSeverity>,
}

impl StepRecord {
    fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str(&format!(
            "{{\"unit\": {}, \"residual\": {}, \"cfl_scale\": {}, \"event\": \"{}\"",
            self.unit,
            aerothermo_numerics::json::write_f64(self.residual),
            aerothermo_numerics::json::write_f64(self.cfl_scale),
            self.event.tag(),
        ));
        match &self.event {
            StepEvent::Rollback { retry, error } => {
                s.push_str(&format!(
                    ", \"retry\": {retry}, \"error\": {}",
                    aerothermo_numerics::json::write_string(error)
                ));
            }
            StepEvent::Fatal { error } => {
                s.push_str(&format!(
                    ", \"error\": {}",
                    aerothermo_numerics::json::write_string(error)
                ));
            }
            _ => {}
        }
        if self.cache_hits != 0 || self.cache_misses != 0 {
            s.push_str(&format!(
                ", \"cache_hits\": {}, \"cache_misses\": {}",
                self.cache_hits, self.cache_misses
            ));
        }
        if self.audit_findings != 0 {
            s.push_str(&format!(", \"audit_findings\": {}", self.audit_findings));
        }
        if let Some(w) = self.audit_worst {
            s.push_str(&format!(", \"audit_worst\": \"{}\"", w.name()));
        }
        s.push('}');
        s
    }
}

/// Fixed-capacity ring of the last N [`StepRecord`]s.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<StepRecord>,
    /// Counter baseline for per-step cache-delta attribution.
    hits0: u64,
    misses0: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity.max(1)` records.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            ring: VecDeque::with_capacity(capacity),
            hits0: 0,
            misses0: 0,
        }
    }

    /// Capacity of the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot the calling thread's cache counters as the baseline for
    /// the next [`FlightRecorder::record`] call's deltas.
    pub fn mark_step_start(&mut self) {
        let snap = counters::thread_snapshot();
        self.hits0 = snap.get(Counter::EquilibriumCacheHits);
        self.misses0 = snap.get(Counter::EquilibriumCacheMisses);
    }

    /// Push a record, evicting the oldest when full. Cache-hit/miss deltas
    /// since [`FlightRecorder::mark_step_start`] are filled in here.
    pub fn record(
        &mut self,
        unit: usize,
        residual: f64,
        cfl_scale: f64,
        event: StepEvent,
        audit_findings: usize,
        audit_worst: Option<AuditSeverity>,
    ) {
        let snap = counters::thread_snapshot();
        let rec = StepRecord {
            unit,
            residual,
            cfl_scale,
            event,
            cache_hits: snap
                .get(Counter::EquilibriumCacheHits)
                .saturating_sub(self.hits0),
            cache_misses: snap
                .get(Counter::EquilibriumCacheMisses)
                .saturating_sub(self.misses0),
            audit_findings,
            audit_worst,
        };
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(rec);
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &StepRecord> {
        self.ring.iter()
    }

    /// Number of retained records (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Freeze the ring into a [`PostMortem`].
    #[must_use]
    pub fn post_mortem(
        &self,
        tag: &str,
        trigger: Trigger,
        error: Option<String>,
        failing_unit: usize,
        retries: usize,
        final_cfl_scale: f64,
    ) -> PostMortem {
        PostMortem {
            tag: tag.to_string(),
            trigger,
            error,
            failing_unit,
            retries,
            final_cfl_scale,
            capacity: self.capacity,
            records: self.ring.iter().cloned().collect(),
        }
    }
}

/// Why a post-mortem was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// A [`SolverError`](aerothermo_numerics::telemetry::SolverError)
    /// escaped the retry budget (the run died).
    SolverError,
    /// A `--inject-nan` drill fired; the run may well have recovered, but
    /// the black box is dumped anyway so the drill's forensics are
    /// inspectable (and CI can gate on them).
    NanInjection,
}

impl Trigger {
    /// Stable snake_case tag used in the dump JSON.
    #[must_use]
    pub const fn tag(self) -> &'static str {
        match self {
            Trigger::SolverError => "solver_error",
            Trigger::NanInjection => "nan_injection",
        }
    }
}

/// The frozen black box: identity, the terminal error (if any), and the
/// last-N step records.
#[derive(Debug, Clone)]
pub struct PostMortem {
    /// Solver tag (`RunMeta::tag`) that produced the dump.
    pub tag: String,
    /// What triggered the dump.
    pub trigger: Trigger,
    /// Display text of the escaping error (`None` for a recovered
    /// injection drill).
    pub error: Option<String>,
    /// Progress units completed when the run ended (the failing step for
    /// a terminal error).
    pub failing_unit: usize,
    /// Retries consumed.
    pub retries: usize,
    /// CFL scale at the end.
    pub final_cfl_scale: f64,
    /// Ring capacity the recorder ran with.
    pub capacity: usize,
    /// The retained records, oldest first.
    pub records: Vec<StepRecord>,
}

impl PostMortem {
    /// Serialize as the `aerothermo-blackbox-v1` JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1 << 12);
        s.push_str("{\"schema\": \"aerothermo-blackbox-v1\"");
        s.push_str(&format!(
            ", \"tag\": {}",
            aerothermo_numerics::json::write_string(&self.tag)
        ));
        s.push_str(&format!(", \"trigger\": \"{}\"", self.trigger.tag()));
        match &self.error {
            Some(e) => s.push_str(&format!(
                ", \"error\": {}",
                aerothermo_numerics::json::write_string(e)
            )),
            None => s.push_str(", \"error\": null"),
        }
        s.push_str(&format!(
            ", \"failing_unit\": {}, \"retries\": {}, \"final_cfl_scale\": {}, \
             \"capacity\": {}, \"records\": [",
            self.failing_unit,
            self.retries,
            aerothermo_numerics::json::write_f64(self.final_cfl_scale),
            self.capacity,
        ));
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&r.to_json());
        }
        s.push_str("]}");
        s
    }

    /// Write the dump to `path` (creating parent directories is the
    /// caller's job; a dump must never mask the original solver error, so
    /// IO failures are reported, not propagated).
    pub fn write(&self, path: &Path) {
        if let Err(e) = std::fs::write(path, self.to_json()) {
            eprintln!("warning: failed to write black box {}: {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn advance(unit: usize) -> StepRecord {
        StepRecord {
            unit,
            residual: 1.0 / unit as f64,
            cfl_scale: 1.0,
            event: StepEvent::Advance,
            cache_hits: 0,
            cache_misses: 0,
            audit_findings: 0,
            audit_worst: None,
        }
    }

    #[test]
    fn ring_keeps_exactly_last_n() {
        let mut fr = FlightRecorder::new(8);
        for unit in 1..=20 {
            let r = advance(unit);
            fr.record(r.unit, r.residual, r.cfl_scale, r.event, 0, None);
        }
        assert_eq!(fr.len(), 8);
        let units: Vec<usize> = fr.records().map(|r| r.unit).collect();
        assert_eq!(units, (13..=20).collect::<Vec<_>>());
    }

    #[test]
    fn post_mortem_json_is_parseable_and_complete() {
        let mut fr = FlightRecorder::new(4);
        for unit in 1..=3 {
            let r = advance(unit);
            fr.record(r.unit, r.residual, r.cfl_scale, r.event, 0, None);
        }
        fr.record(
            3,
            f64::NAN,
            0.5,
            StepEvent::Rollback {
                retry: 1,
                error: "non-finite rho at (2, 3)".into(),
            },
            1,
            Some(AuditSeverity::Fail),
        );
        let pm = fr.post_mortem(
            "euler2d",
            Trigger::SolverError,
            Some("non-finite rho at (2, 3)".into()),
            3,
            1,
            0.5,
        );
        let json = pm.to_json();
        let v = aerothermo_numerics::json::parse(&json).expect("black box parses");
        assert_eq!(
            v.get("schema").unwrap().as_str().unwrap(),
            "aerothermo-blackbox-v1"
        );
        assert_eq!(v.get("failing_unit").unwrap().as_f64().unwrap(), 3.0);
        let recs = v.get("records").unwrap().as_array().unwrap();
        assert_eq!(recs.len(), 4);
        let last = &recs[3];
        assert_eq!(last.get("event").unwrap().as_str().unwrap(), "rollback");
        assert!(last.get("residual").unwrap().is_null()); // NaN -> null
        assert_eq!(last.get("audit_worst").unwrap().as_str().unwrap(), "fail");
    }
}
