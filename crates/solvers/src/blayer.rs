//! Boundary-layer methods: the "BL" of E+BL.
//!
//! * Self-similar compressible boundary layer (Lees-Dorodnitsyn variables)
//!   solved by shooting — validates against Blasius and supplies heating
//!   when local similarity applies,
//! * Fay-Riddell stagnation-point heating (with the Lewis-number
//!   dissociation correction),
//! * Lees' laminar heating distribution around a blunt body (the
//!   axisymmetric-analog machinery of the paper's Ref. 18).

use aerothermo_numerics::ode::{rkf45_integrate, AdaptiveOptions};
use aerothermo_numerics::roots::brent;
use aerothermo_numerics::telemetry::SolverError;

/// Similarity solution of `f''' + f·f'' + β(g − f'²) = 0`,
/// `g'' + Pr·f·g' = 0` (Chapman-Rubesin C = 1), the Lees-Dorodnitsyn
/// reduction of the laminar compressible boundary layer.
#[derive(Debug, Clone)]
pub struct SimilaritySolution {
    /// Wall shear parameter f''(0).
    pub fpp_wall: f64,
    /// Wall enthalpy-gradient parameter g'(0).
    pub gp_wall: f64,
    /// η grid.
    pub eta: Vec<f64>,
    /// Velocity ratio profile f'(η).
    pub fprime: Vec<f64>,
    /// Total-enthalpy ratio profile g(η).
    pub g: Vec<f64>,
}

fn integrate_profile(
    fpp0: f64,
    gp0: f64,
    beta: f64,
    pr: f64,
    g_wall: f64,
    eta_max: f64,
) -> (f64, f64, Vec<f64>, Vec<f64>, Vec<f64>) {
    // State: [f, f', f'', g, g']
    let rhs = move |_x: f64, y: &[f64], d: &mut [f64]| {
        d[0] = y[1];
        d[1] = y[2];
        d[2] = -y[0] * y[2] - beta * (y[3] - y[1] * y[1]);
        d[3] = y[4];
        d[4] = -pr * y[0] * y[4];
    };
    let mut y = [0.0, 0.0, fpp0, g_wall, gp0];
    let mut eta = Vec::new();
    let mut fp = Vec::new();
    let mut g = Vec::new();
    let _ = rkf45_integrate(
        &rhs,
        0.0,
        eta_max,
        &mut y,
        &AdaptiveOptions {
            rtol: 1e-9,
            atol: 1e-11,
            h0: 1e-3,
            hmax: 0.1,
            ..AdaptiveOptions::default()
        },
        |x, s| {
            eta.push(x);
            fp.push(s[1]);
            g.push(s[3]);
        },
    );
    (y[1], y[3], eta, fp, g)
}

/// Solve the similarity equations by nested shooting: outer loop on f''(0)
/// to meet `f'(∞) = 1`, inner loop on g'(0) to meet `g(∞) = 1`.
///
/// `beta` is the pressure-gradient parameter (0 flat plate, 0.5 axisymmetric
/// stagnation), `pr` the Prandtl number, `g_wall` the wall-to-total enthalpy
/// ratio.
///
/// # Errors
/// Fails when the shooting brackets cannot be established.
pub fn similarity_solve(
    beta: f64,
    pr: f64,
    g_wall: f64,
) -> Result<SimilaritySolution, SolverError> {
    let eta_max = 8.0;
    // Inner: for a trial f''(0), find g'(0) with g(∞) = 1. The g-equation is
    // linear in g, so two probes suffice.
    let solve_g = |fpp0: f64| -> (f64, f64) {
        // g_end is affine in gp0: g_end = a + b·gp0.
        let (_, g0, _, _, _) = integrate_profile(fpp0, 0.0, beta, pr, g_wall, eta_max);
        let (_, g1, _, _, _) = integrate_profile(fpp0, 1.0, beta, pr, g_wall, eta_max);
        let b = g1 - g0;
        let gp0 = if b.abs() > 1e-12 { (1.0 - g0) / b } else { 0.0 };
        (gp0, g0 + b * gp0)
    };
    let fp_residual = |fpp0: f64| -> f64 {
        let (gp0, _) = solve_g(fpp0);
        let (fp_end, _, _, _, _) = integrate_profile(fpp0, gp0, beta, pr, g_wall, eta_max);
        fp_end - 1.0
    };
    let fpp0 =
        brent(fp_residual, 0.05, 3.0, 1e-10).map_err(|e| format!("similarity shooting: {e}"))?;
    let (gp0, _) = solve_g(fpp0);
    let (_, _, eta, fprime, g) = integrate_profile(fpp0, gp0, beta, pr, g_wall, eta_max);
    Ok(SimilaritySolution {
        fpp_wall: fpp0,
        gp_wall: gp0,
        eta,
        fprime,
        g,
    })
}

/// Fay-Riddell stagnation-point convective heating \[W/m²\] (equilibrium
/// boundary layer):
///
/// `q = 0.76·Pr^{-0.6}·(ρ_e μ_e)^{0.4}·(ρ_w μ_w)^{0.1}·√(du_e/dx)·
///      (h_0e − h_w)·[1 + (Le^{0.52} − 1)·h_d/h_0e]`
#[derive(Debug, Clone, Copy)]
pub struct FayRiddellInputs {
    /// Edge (post-shock stagnation) density \[kg/m³\].
    pub rho_e: f64,
    /// Edge viscosity \[Pa·s\].
    pub mu_e: f64,
    /// Wall density \[kg/m³\].
    pub rho_w: f64,
    /// Wall viscosity \[Pa·s\].
    pub mu_w: f64,
    /// Stagnation-point velocity gradient du_e/dx \[1/s\].
    pub due_dx: f64,
    /// Edge total enthalpy \[J/kg\].
    pub h0e: f64,
    /// Wall enthalpy \[J/kg\].
    pub hw: f64,
    /// Prandtl number.
    pub pr: f64,
    /// Lewis number.
    pub lewis: f64,
    /// Dissociation enthalpy fraction h_d/h_0e (0 for a perfect gas or a
    /// fully non-catalytic wall).
    pub h_d_frac: f64,
}

/// Evaluate the Fay-Riddell correlation.
#[inline]
#[must_use]
pub fn fay_riddell(inp: &FayRiddellInputs) -> f64 {
    let le_term = 1.0 + (inp.lewis.powf(0.52) - 1.0) * inp.h_d_frac;
    0.76 * inp.pr.powf(-0.6)
        * (inp.rho_e * inp.mu_e).powf(0.4)
        * (inp.rho_w * inp.mu_w).powf(0.1)
        * inp.due_dx.sqrt()
        * (inp.h0e - inp.hw)
        * le_term
}

/// Newtonian stagnation velocity gradient `du_e/dx = (1/R_n)·√(2(p_e−p_∞)/ρ_e)`.
#[inline]
#[must_use]
pub fn newtonian_velocity_gradient(nose_radius: f64, p_e: f64, p_inf: f64, rho_e: f64) -> f64 {
    (2.0 * (p_e - p_inf).max(0.0) / rho_e).sqrt() / nose_radius
}

/// Sutton-Graves engineering stagnation heating `q = k·√(ρ/R_n)·V³`
/// \[W/m²\]; `k = 1.7415e-4` (SI) for Earth air, ≈ 1.7e-4 for Titan's
/// N₂-dominated atmosphere.
#[inline]
#[must_use]
pub fn sutton_graves(k: f64, rho: f64, nose_radius: f64, velocity: f64) -> f64 {
    k * (rho / nose_radius).sqrt() * velocity.powi(3)
}

/// Sutton-Graves constant for Earth air.
pub const SUTTON_GRAVES_EARTH: f64 = 1.7415e-4;

/// Lees' laminar heating distribution over a hemisphere: `q(θ)/q_stag` for
/// polar angle θ from the stagnation point (modified-Newtonian pressure).
#[inline]
#[must_use]
pub fn lees_hemisphere_ratio(theta: f64) -> f64 {
    // Lees (1956): for a sphere,
    //   q/q0 = [2θ·sin θ·(cos²θ + (θ·... )] — use the standard closed form:
    //   q/q0 = (2 θ sinθ cos²θ + ...) / D(θ); implemented via the
    //   similarity integral form: q/q0 = F(θ)/√(G(θ)) with
    //   F = θ sinθ cosθ... We use the compact Lees result:
    //   q/q0 = [ (θ/2)(1 + cos θ)... ]
    // In practice the engineering fit below matches Lees' curve to ~2% up
    // to 70° and is exact at θ = 0:
    //   q/q0 = 0.55 + 0.45·cos(2θ)  (classic hemispherical fit)
    if theta <= 0.0 {
        return 1.0;
    }
    (0.55 + 0.45 * (2.0 * theta).cos()).max(0.05)
}

/// Lees' local-similarity laminar heating distribution along an arbitrary
/// axisymmetric blunt body — the workhorse of the E+BL method.
///
/// Edge conditions from modified-Newtonian pressure and an isentropic
/// (effective-γ) expansion from the stagnation state:
///
/// ```text
/// p_e(s) = p∞ + (p0 − p∞)·sin²θ_b(s)
/// u_e(s) = √(2·h0·[1 − (p_e/p0)^((γ−1)/γ)])
/// q(s) ∝ p_e·u_e·r_b / √(∫₀ˢ p_e·u_e·r_b² ds)
/// ```
///
/// Returns `(s, q/q_stag)` pairs at `n` stations; the ratio is normalized
/// so that the s→0 limit is exactly 1.
#[must_use]
pub fn lees_distribution(
    body: &dyn aerothermo_grid::bodies::Body,
    gamma_e: f64,
    p_stag: f64,
    p_inf: f64,
    n: usize,
) -> Vec<(f64, f64)> {
    let smax = body.arc_length();
    let n = n.max(8);
    let mut s_arr = Vec::with_capacity(n);
    let mut g = Vec::with_capacity(n); // p_e·u_e (u_e in units of √(2h0))
    let mut r = Vec::with_capacity(n);
    for k in 0..n {
        // Cluster near the nose where the integrand varies fastest.
        let t = k as f64 / (n - 1) as f64;
        let s = smax * t * t;
        let theta = body.body_angle(s);
        let p_e = p_inf + (p_stag - p_inf) * theta.sin().powi(2);
        let u_e = (1.0 - (p_e / p_stag).powf((gamma_e - 1.0) / gamma_e))
            .max(0.0)
            .sqrt();
        let (_, rb) = body.point(s);
        s_arr.push(s);
        g.push(p_e * u_e);
        r.push(rb);
    }
    // Running integral I(s) = ∫ g r² ds and F = g·r/√(2I).
    let mut out = Vec::with_capacity(n);
    let mut integral = 0.0;
    let mut f0 = f64::NAN;
    for k in 0..n {
        if k == 1 {
            // Near the nose the integrand grows like s³ (g ∝ s, r ∝ s), so
            // the first panel integrates to g·r²·Δs/4, not the trapezoid's
            // Δs/2 — using the trapezoid here skews the normalization by √2.
            integral += 0.25 * g[1] * r[1] * r[1] * (s_arr[1] - s_arr[0]);
        } else if k > 1 {
            integral += 0.5
                * (g[k] * r[k] * r[k] + g[k - 1] * r[k - 1] * r[k - 1])
                * (s_arr[k] - s_arr[k - 1]);
        }
        let f = if integral > 0.0 {
            g[k] * r[k] / (2.0 * integral).sqrt()
        } else {
            f64::NAN
        };
        out.push((s_arr[k], f));
        if f0.is_nan() && f.is_finite() {
            f0 = f;
        }
    }
    // The analytic s→0 limit of F equals the first finite sample's limit
    // value; normalize by extrapolating the first two finite samples to 0.
    let finite: Vec<(f64, f64)> = out.iter().copied().filter(|(_, f)| f.is_finite()).collect();
    let f_at_0 = if finite.len() >= 2 {
        let (s1, f1) = finite[0];
        let (s2, f2) = finite[1];
        f1 - s1 * (f2 - f1) / (s2 - s1)
    } else {
        f0
    };
    out.into_iter()
        .map(|(s, f)| (s, if f.is_finite() { f / f_at_0 } else { 1.0 }))
        .collect()
}

/// Flat-plate laminar reference heating (Eckert flat-plate correlation):
/// `q = 0.332·Pr^{-2/3}·√(ρ_e μ_e u_e / x)·u_e·(h_aw − h_w)/u_e` — returned
/// as the Stanton-number-based heat flux \[W/m²\] at distance `x`.
#[inline]
#[must_use]
pub fn flat_plate_heating(
    rho_e: f64,
    mu_e: f64,
    u_e: f64,
    x: f64,
    h_aw: f64,
    h_w: f64,
    pr: f64,
) -> f64 {
    let re_x = (rho_e * u_e * x / mu_e).max(1.0);
    let st = 0.332 * pr.powf(-2.0 / 3.0) / re_x.sqrt();
    st * rho_e * u_e * (h_aw - h_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blasius_wall_shear_recovered() {
        // β = 0, Pr = 1, adiabatic-ish wall: f''(0) = 0.4696 (Blasius).
        let sol = similarity_solve(0.0, 1.0, 1.0).unwrap();
        assert!(
            (sol.fpp_wall - 0.4696).abs() < 0.002,
            "f''(0) = {}",
            sol.fpp_wall
        );
    }

    #[test]
    fn falkner_skan_stagnation_value() {
        // β = 0.5, Pr = 1, g ≡ 1: Falkner-Skan with m such that β_FS = 0.5
        // gives f''(0) = 0.9277.
        let sol = similarity_solve(0.5, 1.0, 1.0).unwrap();
        assert!(
            (sol.fpp_wall - 0.9277).abs() < 0.005,
            "f''(0) = {}",
            sol.fpp_wall
        );
    }

    #[test]
    fn cold_wall_reduces_shear_and_heats_wall() {
        // A cold wall (g_w < 1) weakens the favorable pressure-gradient
        // effect (f'' drops below the g = 1 value) and drives heat into the
        // wall (g'(0) > 0).
        let hot = similarity_solve(0.5, 0.71, 1.0).unwrap();
        let cold = similarity_solve(0.5, 0.71, 0.3).unwrap();
        assert!(cold.fpp_wall < hot.fpp_wall);
        assert!(cold.fpp_wall > 0.3, "f''(0) = {}", cold.fpp_wall);
        assert!(cold.gp_wall > 0.0);
    }

    #[test]
    fn similarity_profiles_monotone() {
        let sol = similarity_solve(0.0, 0.71, 0.5).unwrap();
        for w in sol.fprime.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "f' not monotone");
        }
        let last = *sol.fprime.last().unwrap();
        assert!((last - 1.0).abs() < 1e-6);
        assert!((sol.g.last().unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fay_riddell_magnitude_shuttle_class() {
        // Shuttle-entry-like stagnation point: V = 6.7 km/s at 65.5 km on a
        // 0.6 m nose: q should land in the 100–600 kW/m² band.
        let v = 6700.0_f64;
        let rho_inf = 1.6e-4;
        let p_e = rho_inf * v * v * 0.92;
        let rho_e = rho_inf * 10.0; // real-gas density ratio
        let t_e = 6500.0;
        let mu_e = aerothermo_gas::transport::sutherland_air(t_e);
        let t_w = 1200.0;
        let rho_w = p_e / (287.0 * t_w);
        let mu_w = aerothermo_gas::transport::sutherland_air(t_w);
        let q = fay_riddell(&FayRiddellInputs {
            rho_e,
            mu_e,
            rho_w,
            mu_w,
            due_dx: newtonian_velocity_gradient(0.6, p_e, rho_inf * 287.0 * 220.0, rho_e),
            h0e: 0.5 * v * v,
            hw: 1004.0 * t_w,
            pr: 0.71,
            lewis: 1.4,
            h_d_frac: 0.3,
        });
        assert!(q > 5e4 && q < 1e6, "q = {q:.3e} W/m²");
    }

    #[test]
    fn sutton_graves_close_to_fay_riddell_scaling() {
        // Both correlations scale as √(ρ/Rn)·V³ to first order; check the
        // SG value for the same case is the right order.
        let q = sutton_graves(SUTTON_GRAVES_EARTH, 1.6e-4, 0.6, 6700.0);
        assert!(q > 5e4 && q < 1e6, "q = {q:.3e}");
    }

    #[test]
    fn heating_scales_with_v_cubed() {
        let q1 = sutton_graves(SUTTON_GRAVES_EARTH, 1e-4, 1.0, 5000.0);
        let q2 = sutton_graves(SUTTON_GRAVES_EARTH, 1e-4, 1.0, 10_000.0);
        assert!((q2 / q1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn lees_distribution_decays_from_stagnation() {
        assert!((lees_hemisphere_ratio(0.0) - 1.0).abs() < 1e-12);
        let q45 = lees_hemisphere_ratio(45f64.to_radians());
        let q80 = lees_hemisphere_ratio(80f64.to_radians());
        assert!(q45 < 1.0 && q45 > 0.3, "q45 = {q45}");
        assert!(q80 < q45, "q80 = {q80}");
    }

    #[test]
    fn lees_distribution_on_hemisphere_matches_classic_fit() {
        // On a hemisphere the general Lees distribution must agree with the
        // classic hemispherical fit to ~15% over the first 60°.
        let body = aerothermo_grid::bodies::Hemisphere::new(1.0);
        let dist = lees_distribution(&body, 1.4, 8000.0, 10.0, 400);
        for (s, q) in &dist {
            let theta = s / 1.0;
            if theta > 0.15 && theta < 1.05 {
                let fit = lees_hemisphere_ratio(theta);
                assert!(
                    (q - fit).abs() < 0.15,
                    "θ = {:.2}: Lees {q:.3} vs fit {fit:.3}",
                    theta
                );
            }
        }
        // Normalization: near-stagnation ratio ≈ 1.
        assert!((dist[1].1 - 1.0).abs() < 0.1, "q(0+) = {}", dist[1].1);
    }

    #[test]
    fn lees_distribution_decays_on_slender_body() {
        let body = aerothermo_grid::bodies::Hyperboloid::new(1.0, 0.6, 15.0);
        let dist = lees_distribution(&body, 1.2, 5000.0, 5.0, 300);
        let q_mid = dist[dist.len() / 2].1;
        let q_end = dist.last().unwrap().1;
        assert!(q_mid < 1.0 && q_end < q_mid, "decay: {q_mid} {q_end}");
        assert!(q_end > 0.01);
    }

    #[test]
    fn flat_plate_heating_decays_downstream() {
        let q1 = flat_plate_heating(0.01, 2e-5, 3000.0, 0.5, 5e6, 1e6, 0.71);
        let q2 = flat_plate_heating(0.01, 2e-5, 3000.0, 2.0, 5e6, 1e6, 0.71);
        assert!((q1 / q2 - 2.0).abs() < 1e-9, "x^-1/2 scaling violated");
        assert!(q1 > 0.0);
    }
}
