//! `aerothermod` — the persistent aerothermodynamics service daemon.
//!
//! Binds a Unix-domain socket, recovers the job registry from the data
//! directory, and serves the line-delimited JSON protocol until a
//! `shutdown` request. See `README.md` § Service for the schemas and
//! `aeroctl` for the matching CLI client.
//!
//! ```text
//! aerothermod --socket=PATH --data-dir=DIR [--workers=N]
//!             [--accept-threads=N] [--corridor=H0,H1,V0,V1]
//!             [--grid=NH,NV] [--tolerance=T] [--nose-radius=R]
//!             [--prebuild]
//! aerothermod --coordinate=N --plan=PATH --data-dir=DIR [--workers=N]
//!             [--shard-strategy=round_robin|cost_balanced]
//! ```
//!
//! Coordinator mode (`--coordinate=N`) runs no daemon itself: it spawns
//! `N` per-shard child daemons under the data directory, resumes any
//! shard whose child dies, federates the shard stores into
//! `DIR/federated.jsonl`, and exits (0 on a complete federation).
//!
//! Exit codes: 0 clean shutdown, 2 usage error, 3 startup failure,
//! 4 incomplete federation (coordinator mode).

use aerothermo_service::{run_coordinated_sweep, CoordinatorConfig, Daemon, ServiceConfig};
use aerothermo_sweep::{ShardStrategy, SweepPlan};

fn usage() -> ! {
    eprintln!(
        "usage: aerothermod --socket=PATH --data-dir=DIR [--workers=N] \
         [--accept-threads=N] [--corridor=H0,H1,V0,V1] [--grid=NH,NV] \
         [--tolerance=T] [--nose-radius=R] [--prebuild]\n\
         \x20      aerothermod --coordinate=N --plan=PATH --data-dir=DIR \
         [--workers=N] [--shard-strategy=round_robin|cost_balanced]"
    );
    std::process::exit(2);
}

fn parse_pair(s: &str, flag: &str) -> (usize, usize) {
    let parts: Vec<_> = s.split(',').collect();
    match parts.as_slice() {
        [a, b] => match (a.trim().parse(), b.trim().parse()) {
            (Ok(x), Ok(y)) => (x, y),
            _ => {
                eprintln!("aerothermod: {flag} expects two integers, got '{s}'");
                usage()
            }
        },
        _ => {
            eprintln!("aerothermod: {flag} expects two integers, got '{s}'");
            usage()
        }
    }
}

fn parse_corridor(s: &str) -> ((f64, f64), (f64, f64)) {
    let nums: Vec<f64> = s.split(',').filter_map(|x| x.trim().parse().ok()).collect();
    if nums.len() != 4 {
        eprintln!("aerothermod: --corridor expects H0,H1,V0,V1, got '{s}'");
        usage();
    }
    ((nums[0], nums[1]), (nums[2], nums[3]))
}

/// `--coordinate=N` mode: orchestrate N child daemons, federate, exit.
fn run_coordinator(
    shards: usize,
    plan_path: &str,
    data_dir: &str,
    workers: usize,
    strategy: ShardStrategy,
) -> ! {
    let plan = match SweepPlan::load(plan_path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("aerothermod: loading plan '{plan_path}': {e}");
            std::process::exit(2);
        }
    };
    let exe = match std::env::current_exe() {
        Ok(p) => p.to_string_lossy().into_owned(),
        Err(e) => {
            eprintln!("aerothermod: resolving own binary path: {e}");
            std::process::exit(3);
        }
    };
    let mut cfg = CoordinatorConfig::new(&exe, data_dir, shards);
    cfg.workers = workers;
    cfg.strategy = strategy;
    println!(
        "aerothermod coordinating plan '{}' ({} cases) across {} shard daemon(s) ({})",
        plan.name,
        plan.cases.len(),
        cfg.shards,
        cfg.strategy.name(),
    );
    match run_coordinated_sweep(&plan, &cfg) {
        Ok(done) => {
            for s in &done.shards {
                println!(
                    "  shard {} job {} store {}{}",
                    s.shard,
                    s.job,
                    s.store,
                    if s.respawns > 0 {
                        format!(" ({} respawn(s))", s.respawns)
                    } else {
                        String::new()
                    }
                );
            }
            println!("{}", done.report.summary());
            println!("canonical store written to {}", done.store_path);
            if done.report.complete() {
                std::process::exit(0);
            }
            eprintln!("aerothermod: federation incomplete");
            std::process::exit(aerothermo_sweep::report::STRICT_EXIT_CODE);
        }
        Err(e) => {
            eprintln!("aerothermod: coordinated sweep failed: {e}");
            std::process::exit(3);
        }
    }
}

fn main() {
    let mut cfg = ServiceConfig::default();
    let mut prebuild = false;
    let mut coordinate: Option<usize> = None;
    let mut plan_path: Option<String> = None;
    let mut strategy = ShardStrategy::default();
    for arg in std::env::args().skip(1) {
        let (flag, value) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), v.to_string()),
            None => (arg.clone(), String::new()),
        };
        match flag.as_str() {
            "--socket" => cfg.socket_path = value,
            "--data-dir" => cfg.data_dir = value,
            "--workers" => match value.parse() {
                Ok(n) => cfg.workers = n,
                Err(_) => usage(),
            },
            "--accept-threads" => match value.parse() {
                Ok(n) => cfg.accept_threads = n,
                Err(_) => usage(),
            },
            "--corridor" => cfg.corridor = parse_corridor(&value),
            "--grid" => cfg.grid = parse_pair(&value, "--grid"),
            "--tolerance" => match value.parse() {
                Ok(t) => cfg.tolerance = t,
                Err(_) => usage(),
            },
            "--nose-radius" => match value.parse() {
                Ok(r) => cfg.nose_radius = r,
                Err(_) => usage(),
            },
            "--prebuild" => prebuild = true,
            "--coordinate" => match value.parse() {
                Ok(n) if n >= 1 => coordinate = Some(n),
                _ => usage(),
            },
            "--plan" => plan_path = Some(value),
            "--shard-strategy" => match ShardStrategy::parse(&value) {
                Ok(s) => strategy = s,
                Err(e) => {
                    eprintln!("aerothermod: {e}");
                    usage()
                }
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("aerothermod: unknown flag '{other}'");
                usage()
            }
        }
    }

    if let Some(shards) = coordinate {
        let Some(plan) = plan_path else {
            eprintln!("aerothermod: --coordinate requires --plan=PATH");
            usage()
        };
        run_coordinator(shards, &plan, &cfg.data_dir, cfg.workers, strategy);
    }

    let daemon = match Daemon::start(cfg.clone()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("aerothermod: startup failed: {e}");
            std::process::exit(3);
        }
    };
    println!(
        "aerothermod ready socket={} data_dir={} workers={} accept_threads={} jobs={}",
        cfg.socket_path,
        cfg.data_dir,
        cfg.workers,
        cfg.accept_threads,
        daemon.job_count(),
    );

    if prebuild {
        // Warm the resident surrogate before the first query arrives by
        // sending ourselves a throwaway in-corridor query.
        let ((h0, h1), (v0, v1)) = cfg.corridor;
        let mut me = aerothermo_service::Client::connect(&cfg.socket_path).expect("self-connect");
        match me.query(0.5 * (h0 + h1), 0.5 * (v0 + v1)) {
            Ok(_) => println!("aerothermod surrogate prebuilt"),
            Err(e) => eprintln!("aerothermod: prebuild failed: {e}"),
        }
    }

    daemon.run_until_shutdown();
    println!("aerothermod stopped");
}
