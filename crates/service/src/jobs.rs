//! On-disk job registry: submitted plans become durable per-job file
//! triples under the data directory, executed on the sweep worker pool
//! and resumable across daemon restarts.
//!
//! File layout for job `job-0007`:
//!
//! ```text
//! {data_dir}/job-0007.plan.json     the submitted plan, verbatim schema
//! {data_dir}/job-0007.store.jsonl   crash-safe per-case result journal
//! {data_dir}/job-0007.events.jsonl  lifecycle event stream (heartbeats)
//! {data_dir}/job-0007.shard.json    shard sidecar (sharded jobs only)
//! ```
//!
//! A *sharded* job (`submit_shard`) persists the **full** plan plus a
//! shard sidecar; the slice is recomputed from both on every run and
//! recovery, so resume-after-SIGKILL works identically for shards. The
//! registry's `federate` merges the stores of a set of shard jobs back
//! into one canonical store through [`aerothermo_sweep::shard`].
//!
//! The plan file is the registry: a startup scan rebuilds every job from
//! disk, classifying each as [`JobPhase::Completed`] (every case has a
//! completed record) or [`JobPhase::Interrupted`] (the daemon died with
//! work outstanding — a `resume` request picks it back up through the
//! store's skip logic).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use aerothermo_numerics::telemetry::SolverError;
use aerothermo_sweep::shard::{federate_to_store, shard_plan, FederationReport, ShardSpec};
use aerothermo_sweep::store::completed_ids;
use aerothermo_sweep::{load_records, run_sweep, SweepOptions, SweepPlan};

/// Recover from poisoning instead of cascading: registry state is plain
/// data and stays coherent even if a holder panicked.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Lifecycle phase of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// A sweep thread is executing the plan right now.
    Running,
    /// Every case finished and the report was green or degraded — the
    /// terminal success phase (individual cases may still be `failed`;
    /// inspect the records).
    Completed,
    /// The sweep stopped early on its `halt_after` budget.
    Halted,
    /// The sweep stopped early on an external `cancel` request.
    Cancelled,
    /// The sweep aborted on an infrastructure error (bad plan, store
    /// I/O); see [`Job::error`].
    Failed,
    /// Found on disk at startup with cases outstanding: the previous
    /// daemon died mid-job. `resume` continues it.
    Interrupted,
}

impl JobPhase {
    /// Stable lowercase wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Running => "running",
            JobPhase::Completed => "completed",
            JobPhase::Halted => "halted",
            JobPhase::Cancelled => "cancelled",
            JobPhase::Failed => "failed",
            JobPhase::Interrupted => "interrupted",
        }
    }

    /// Whether a `resume` request is accepted in this phase.
    #[must_use]
    pub fn resumable(self) -> bool {
        !matches!(self, JobPhase::Running)
    }
}

/// One registered job: durable paths plus live progress state.
#[derive(Debug)]
pub struct Job {
    /// Registry id (`job-NNNN`), unique within the data directory.
    pub id: String,
    /// Path of the saved plan file.
    pub plan_path: String,
    /// Path of the JSONL result store (the job journal).
    pub store_path: String,
    /// Path of the JSONL lifecycle event stream.
    pub events_path: String,
    /// Plan name, for status display.
    pub plan_name: String,
    /// Planned case count.
    pub total: usize,
    /// Cases with a recorded outcome (prior completed + this run's
    /// records). Display-only; clamped to `total` on the wire.
    pub done: AtomicUsize,
    /// Cooperative cancel flag checked by the sweep worker loop. Reset
    /// on resume.
    pub cancel: Arc<AtomicBool>,
    /// The shard slice this job runs, for sharded jobs (`total` counts
    /// the slice, not the full plan).
    pub shard: Option<ShardSpec>,
    phase: Mutex<JobPhase>,
    error: Mutex<Option<String>>,
}

impl Job {
    /// Current phase.
    pub fn phase(&self) -> JobPhase {
        *relock(&self.phase)
    }

    fn set_phase(&self, p: JobPhase) {
        *relock(&self.phase) = p;
    }

    /// Infrastructure-error message, if the job [`JobPhase::Failed`].
    pub fn error(&self) -> Option<String> {
        relock(&self.error).clone()
    }

    /// Execute (or resume) this job's plan on the sweep pool, updating
    /// phase and progress as records land. Blocks until the sweep
    /// returns; callers spawn it on a detached thread.
    pub fn run(self: &Arc<Self>, workers: usize, halt_after: Option<usize>) {
        // Sharded jobs recompute their slice from the full plan + sidecar
        // spec — the same pure partition every shard of the run computes.
        let plan = match SweepPlan::load(&self.plan_path).and_then(|p| match &self.shard {
            Some(spec) => shard_plan(&p, spec),
            None => Ok(p),
        }) {
            Ok(p) => p,
            Err(e) => {
                *relock(&self.error) = Some(e.to_string());
                self.set_phase(JobPhase::Failed);
                return;
            }
        };
        // Progress restarts from the store's completed set: resumed
        // records skip the queue and never hit the record hook.
        let prior = load_records(&self.store_path)
            .map(|r| completed_ids(&r).len())
            .unwrap_or(0);
        self.done.store(prior, Ordering::SeqCst);
        let progress = Arc::clone(self);
        let opts = SweepOptions {
            workers,
            store_path: Some(self.store_path.clone()),
            events_path: Some(self.events_path.clone()),
            resume: true,
            halt_after_cases: halt_after,
            cancel: Some(Arc::clone(&self.cancel)),
            record_hook: Some(Arc::new(move |_outcome| {
                progress.done.fetch_add(1, Ordering::SeqCst);
            })),
            ..SweepOptions::default()
        };
        match run_sweep(&plan, &opts) {
            Ok(report) => self.set_phase(if self.cancel.load(Ordering::SeqCst) {
                JobPhase::Cancelled
            } else if report.halted {
                JobPhase::Halted
            } else {
                JobPhase::Completed
            }),
            Err(e) => {
                *relock(&self.error) = Some(e.to_string());
                self.set_phase(JobPhase::Failed);
            }
        }
    }
}

/// The daemon's job table: durable on disk, indexed in memory.
#[derive(Debug)]
pub struct JobRegistry {
    data_dir: String,
    jobs: Mutex<BTreeMap<String, Arc<Job>>>,
    next: AtomicUsize,
}

impl JobRegistry {
    /// Open (creating if needed) the registry at `data_dir` and rebuild
    /// the job table from the plan files found there.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on unreadable directories or corrupt
    /// plan/store files — a daemon must not silently shadow prior jobs.
    pub fn open(data_dir: &str) -> Result<Self, SolverError> {
        std::fs::create_dir_all(data_dir)
            .map_err(|e| SolverError::BadInput(format!("creating data dir '{data_dir}': {e}")))?;
        let reg = Self {
            data_dir: data_dir.to_string(),
            jobs: Mutex::new(BTreeMap::new()),
            next: AtomicUsize::new(1),
        };
        let entries = std::fs::read_dir(data_dir)
            .map_err(|e| SolverError::BadInput(format!("scanning data dir '{data_dir}': {e}")))?;
        let mut max_seq = 0usize;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            // The durable id-allocation scan considers *every* `job-NNNN.*`
            // file, not just surviving plan files: a compacted job whose
            // plan was deleted but whose store remains must still pin the
            // sequence, or a new submission would reuse its id and append
            // onto the orphaned store.
            if let Some(rest) = name.strip_prefix("job-") {
                if let Some(seq) = rest.split('.').next().and_then(|s| s.parse::<usize>().ok()) {
                    max_seq = max_seq.max(seq);
                }
            }
            let Some(id) = name
                .strip_suffix(".plan.json")
                .filter(|id| id.starts_with("job-"))
            else {
                continue;
            };
            let job = reg.recover(id)?;
            relock(&reg.jobs).insert(id.to_string(), job);
        }
        reg.next.store(max_seq + 1, Ordering::SeqCst);
        Ok(reg)
    }

    /// Rebuild one job from its on-disk files, classifying it as
    /// completed or interrupted by comparing the store against the plan
    /// (the shard *slice* of the plan when a shard sidecar is present).
    fn recover(&self, id: &str) -> Result<Arc<Job>, SolverError> {
        let (plan_path, store_path, events_path) = self.paths(id);
        let plan = SweepPlan::load(&plan_path)?;
        let shard = self.load_shard_sidecar(id)?;
        let total = match &shard {
            Some(spec) => shard_plan(&plan, spec)?.cases.len(),
            None => plan.cases.len(),
        };
        let done = completed_ids(&load_records(&store_path)?).len();
        let phase = if done >= total {
            JobPhase::Completed
        } else {
            JobPhase::Interrupted
        };
        Ok(Arc::new(Job {
            id: id.to_string(),
            plan_path,
            store_path,
            events_path,
            plan_name: plan.name.clone(),
            total,
            done: AtomicUsize::new(done),
            cancel: Arc::new(AtomicBool::new(false)),
            shard,
            phase: Mutex::new(phase),
            error: Mutex::new(None),
        }))
    }

    fn paths(&self, id: &str) -> (String, String, String) {
        let base = format!("{}/{id}", self.data_dir);
        (
            format!("{base}.plan.json"),
            format!("{base}.store.jsonl"),
            format!("{base}.events.jsonl"),
        )
    }

    fn shard_sidecar_path(&self, id: &str) -> String {
        format!("{}/{id}.shard.json", self.data_dir)
    }

    fn load_shard_sidecar(&self, id: &str) -> Result<Option<ShardSpec>, SolverError> {
        let path = self.shard_sidecar_path(id);
        match std::fs::read_to_string(&path) {
            Ok(doc) => ShardSpec::from_json_doc(&doc).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(SolverError::BadInput(format!(
                "reading shard sidecar '{path}': {e}"
            ))),
        }
    }

    /// Persist `plan` as a new job in phase [`JobPhase::Running`] and
    /// return it. The caller is responsible for actually spawning
    /// [`Job::run`] — registration and execution are split so the
    /// response can carry the id before the first case lands.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] if the plan fails validation or the
    /// plan file cannot be written.
    pub fn submit(&self, plan: &SweepPlan) -> Result<Arc<Job>, SolverError> {
        self.submit_sharded(plan, None)
    }

    /// [`JobRegistry::submit`] for one shard of `plan`: the **full** plan
    /// is persisted (the slice is a pure function of it) together with a
    /// shard sidecar, and the job runs/resumes only its slice.
    ///
    /// # Errors
    /// As [`JobRegistry::submit`], plus sidecar write failures.
    pub fn submit_shard(&self, plan: &SweepPlan, spec: ShardSpec) -> Result<Arc<Job>, SolverError> {
        self.submit_sharded(plan, Some(spec))
    }

    fn submit_sharded(
        &self,
        plan: &SweepPlan,
        shard: Option<ShardSpec>,
    ) -> Result<Arc<Job>, SolverError> {
        plan.validate()?;
        let total = match &shard {
            Some(spec) => shard_plan(plan, spec)?.cases.len(),
            None => plan.cases.len(),
        };
        let seq = self.next.fetch_add(1, Ordering::SeqCst);
        let id = format!("job-{seq:04}");
        let (plan_path, store_path, events_path) = self.paths(&id);
        plan.save(&plan_path)?;
        if let Some(spec) = &shard {
            let path = self.shard_sidecar_path(&id);
            std::fs::write(&path, spec.to_json()).map_err(|e| {
                SolverError::BadInput(format!("writing shard sidecar '{path}': {e}"))
            })?;
        }
        let job = Arc::new(Job {
            id: id.clone(),
            plan_path,
            store_path,
            events_path,
            plan_name: plan.name.clone(),
            total,
            done: AtomicUsize::new(0),
            cancel: Arc::new(AtomicBool::new(false)),
            shard,
            phase: Mutex::new(JobPhase::Running),
            error: Mutex::new(None),
        });
        relock(&self.jobs).insert(id, Arc::clone(&job));
        Ok(job)
    }

    /// Look up a job by id.
    pub fn get(&self, id: &str) -> Option<Arc<Job>> {
        relock(&self.jobs).get(id).cloned()
    }

    /// All jobs in id order.
    pub fn list(&self) -> Vec<Arc<Job>> {
        relock(&self.jobs).values().cloned().collect()
    }

    /// Flip a resumable job back to [`JobPhase::Running`] with a fresh
    /// cancel flag, returning it ready for [`Job::run`].
    ///
    /// # Errors
    /// [`SolverError::BadInput`] if the job does not exist or is
    /// currently running.
    pub fn resume(&self, id: &str) -> Result<Arc<Job>, SolverError> {
        let job = self
            .get(id)
            .ok_or_else(|| SolverError::BadInput(format!("unknown job '{id}'")))?;
        if !job.phase().resumable() {
            return Err(SolverError::BadInput(format!(
                "job '{id}' is running; cancel it before resuming"
            )));
        }
        job.cancel.store(false, Ordering::SeqCst);
        job.set_phase(JobPhase::Running);
        Ok(job)
    }

    /// Merge the stores of `ids` (shard jobs of one plan) into a
    /// canonical federated store named after the first job
    /// (`{first}.federated.jsonl` in the data dir), returning its path
    /// and the [`FederationReport`].
    ///
    /// All jobs must exist, none may be running (its store is still
    /// being appended), and all must carry the same plan name; the full
    /// plan is read from the first job's plan file — for sharded jobs
    /// that is the whole plan, which is exactly the federation target.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on unknown/running/mismatched jobs and
    /// on any [`federate_to_store`] failure (conflicting overlaps,
    /// corrupt stores).
    pub fn federate(&self, ids: &[String]) -> Result<(String, FederationReport), SolverError> {
        let first = ids
            .first()
            .ok_or_else(|| SolverError::BadInput("federate needs at least one job".into()))?;
        let mut stores = Vec::with_capacity(ids.len());
        let mut plan_name: Option<String> = None;
        for id in ids {
            let job = self
                .get(id)
                .ok_or_else(|| SolverError::BadInput(format!("unknown job '{id}'")))?;
            if job.phase() == JobPhase::Running {
                return Err(SolverError::BadInput(format!(
                    "job '{id}' is still running; wait or cancel before federating"
                )));
            }
            match &plan_name {
                None => plan_name = Some(job.plan_name.clone()),
                Some(name) if *name != job.plan_name => {
                    return Err(SolverError::BadInput(format!(
                        "federate plan mismatch: '{}' ({name}) vs '{id}' ({})",
                        first, job.plan_name
                    )));
                }
                Some(_) => {}
            }
            stores.push(job.store_path.clone());
        }
        let plan = SweepPlan::load(&self.paths(first).0)?;
        let out = format!("{}/{first}.federated.jsonl", self.data_dir);
        let report = federate_to_store(&plan, &stores, &out)?;
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerothermo_sweep::{CaseSpec, FlowSpec, GasSpec, LevelSpec};

    fn tiny_plan(n: usize) -> SweepPlan {
        let cases = (0..n)
            .map(|k| {
                CaseSpec::new(
                    format!("c{k}"),
                    GasSpec::Air9,
                    LevelSpec::Correlation { k_sg: 1.74e-4 },
                    FlowSpec::new(3e-5, 7000.0, 220.0, 2.0, 0.5, 1500.0),
                )
            })
            .collect();
        SweepPlan {
            name: "registry-test".into(),
            cases,
        }
    }

    #[test]
    fn registry_roundtrip_and_interrupted_classification() {
        let dir = std::env::temp_dir().join(format!("aerothermod-reg-{}", std::process::id()));
        let dir = dir.to_str().unwrap().to_string();
        std::fs::remove_dir_all(&dir).ok();

        let reg = JobRegistry::open(&dir).unwrap();
        let job = reg.submit(&tiny_plan(3)).unwrap();
        assert_eq!(job.id, "job-0001");
        assert_eq!(job.phase(), JobPhase::Running);

        // Run to completion synchronously.
        job.run(1, None);
        assert_eq!(job.phase(), JobPhase::Completed);
        assert_eq!(job.done.load(Ordering::SeqCst), 3);

        // Submit a second job but only run 1 of its 3 cases.
        let partial = reg.submit(&tiny_plan(3)).unwrap();
        assert_eq!(partial.id, "job-0002");
        partial.run(1, Some(1));
        assert_eq!(partial.phase(), JobPhase::Halted);

        // A fresh registry (daemon restart) recovers both from disk.
        let reg2 = JobRegistry::open(&dir).unwrap();
        assert_eq!(reg2.list().len(), 2);
        assert_eq!(reg2.get("job-0001").unwrap().phase(), JobPhase::Completed);
        let back = reg2.get("job-0002").unwrap();
        assert_eq!(back.phase(), JobPhase::Interrupted);
        assert!(back.done.load(Ordering::SeqCst) < 3);

        // Ids keep counting from the recovered maximum.
        assert_eq!(reg2.submit(&tiny_plan(1)).unwrap().id, "job-0003");

        // Resume finishes the interrupted job.
        let resumed = reg2.resume("job-0002").unwrap();
        resumed.run(1, None);
        assert_eq!(resumed.phase(), JobPhase::Completed);
        assert_eq!(resumed.done.load(Ordering::SeqCst), 3);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deleted_plan_files_never_cause_id_reuse() {
        // Regression: id allocation used to derive the max sequence from
        // surviving *.plan.json files only. Deleting a job's plan (say,
        // a compaction sweep) while its store remained then let a new
        // submission reuse the id and append onto the orphaned store.
        let dir = std::env::temp_dir().join(format!("aerothermod-idreuse-{}", std::process::id()));
        let dir = dir.to_str().unwrap().to_string();
        std::fs::remove_dir_all(&dir).ok();

        let reg = JobRegistry::open(&dir).unwrap();
        let a = reg.submit(&tiny_plan(1)).unwrap();
        a.run(1, None);
        let b = reg.submit(&tiny_plan(1)).unwrap();
        b.run(1, None);
        assert_eq!(b.id, "job-0002");

        // Compact away job-0002's plan file; its store survives.
        std::fs::remove_file(&b.plan_path).unwrap();
        assert!(std::fs::metadata(&b.store_path).is_ok());

        let reg2 = JobRegistry::open(&dir).unwrap();
        assert_eq!(reg2.list().len(), 1, "only job-0001 is recoverable");
        let fresh = reg2.submit(&tiny_plan(1)).unwrap();
        assert_eq!(
            fresh.id, "job-0003",
            "orphaned store still pins the sequence"
        );
        assert_ne!(fresh.store_path, b.store_path);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_jobs_slice_recover_and_federate() {
        let dir = std::env::temp_dir().join(format!("aerothermod-shard-{}", std::process::id()));
        let dir = dir.to_str().unwrap().to_string();
        std::fs::remove_dir_all(&dir).ok();
        let plan = tiny_plan(5);
        let spec = |i| ShardSpec::new(i, 2, Default::default()).unwrap();

        let reg = JobRegistry::open(&dir).unwrap();
        let j0 = reg.submit_shard(&plan, spec(0)).unwrap();
        let j1 = reg.submit_shard(&plan, spec(1)).unwrap();
        assert_eq!(j0.total, 3, "round-robin 0/2 of 5 cases");
        assert_eq!(j1.total, 2);
        // Shard 0 is interrupted after 1 of its 3 cases; shard 1 finishes.
        j0.run(1, Some(1));
        j1.run(1, None);
        assert_eq!(j1.phase(), JobPhase::Completed);

        // Restart: sidecars classify against the slice, not the full plan.
        let reg2 = JobRegistry::open(&dir).unwrap();
        let b0 = reg2.get(&j0.id).unwrap();
        assert_eq!(b0.shard, Some(spec(0)));
        assert_eq!(b0.total, 3);
        assert_eq!(b0.phase(), JobPhase::Interrupted);
        assert_eq!(reg2.get(&j1.id).unwrap().phase(), JobPhase::Completed);

        // Federating with a shard outstanding reports the gap; after the
        // resume completes shard 0, federation is complete and canonical.
        let ids = vec![j0.id.clone(), j1.id.clone()];
        let (_, partial) = reg2.federate(&ids).unwrap();
        assert!(!partial.complete());
        let resumed = reg2.resume(&j0.id).unwrap();
        resumed.run(1, None);
        assert_eq!(resumed.phase(), JobPhase::Completed);
        let (out, report) = reg2.federate(&ids).unwrap();
        assert!(report.complete(), "{}", report.summary());
        let merged = load_records(&out).unwrap();
        assert_eq!(merged.len(), 5);
        let ids_in_order: Vec<&str> = merged.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids_in_order, ["c0", "c1", "c2", "c3", "c4"], "plan order");

        std::fs::remove_dir_all(&dir).ok();
    }
}
