//! On-disk job registry: submitted plans become durable per-job file
//! triples under the data directory, executed on the sweep worker pool
//! and resumable across daemon restarts.
//!
//! File layout for job `job-0007`:
//!
//! ```text
//! {data_dir}/job-0007.plan.json     the submitted plan, verbatim schema
//! {data_dir}/job-0007.store.jsonl   crash-safe per-case result journal
//! {data_dir}/job-0007.events.jsonl  lifecycle event stream (heartbeats)
//! ```
//!
//! The plan file is the registry: a startup scan rebuilds every job from
//! disk, classifying each as [`JobPhase::Completed`] (every case has a
//! completed record) or [`JobPhase::Interrupted`] (the daemon died with
//! work outstanding — a `resume` request picks it back up through the
//! store's skip logic).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use aerothermo_numerics::telemetry::SolverError;
use aerothermo_sweep::store::completed_ids;
use aerothermo_sweep::{load_records, run_sweep, SweepOptions, SweepPlan};

/// Recover from poisoning instead of cascading: registry state is plain
/// data and stays coherent even if a holder panicked.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Lifecycle phase of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// A sweep thread is executing the plan right now.
    Running,
    /// Every case finished and the report was green or degraded — the
    /// terminal success phase (individual cases may still be `failed`;
    /// inspect the records).
    Completed,
    /// The sweep stopped early on its `halt_after` budget.
    Halted,
    /// The sweep stopped early on an external `cancel` request.
    Cancelled,
    /// The sweep aborted on an infrastructure error (bad plan, store
    /// I/O); see [`Job::error`].
    Failed,
    /// Found on disk at startup with cases outstanding: the previous
    /// daemon died mid-job. `resume` continues it.
    Interrupted,
}

impl JobPhase {
    /// Stable lowercase wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Running => "running",
            JobPhase::Completed => "completed",
            JobPhase::Halted => "halted",
            JobPhase::Cancelled => "cancelled",
            JobPhase::Failed => "failed",
            JobPhase::Interrupted => "interrupted",
        }
    }

    /// Whether a `resume` request is accepted in this phase.
    #[must_use]
    pub fn resumable(self) -> bool {
        !matches!(self, JobPhase::Running)
    }
}

/// One registered job: durable paths plus live progress state.
#[derive(Debug)]
pub struct Job {
    /// Registry id (`job-NNNN`), unique within the data directory.
    pub id: String,
    /// Path of the saved plan file.
    pub plan_path: String,
    /// Path of the JSONL result store (the job journal).
    pub store_path: String,
    /// Path of the JSONL lifecycle event stream.
    pub events_path: String,
    /// Plan name, for status display.
    pub plan_name: String,
    /// Planned case count.
    pub total: usize,
    /// Cases with a recorded outcome (prior completed + this run's
    /// records). Display-only; clamped to `total` on the wire.
    pub done: AtomicUsize,
    /// Cooperative cancel flag checked by the sweep worker loop. Reset
    /// on resume.
    pub cancel: Arc<AtomicBool>,
    phase: Mutex<JobPhase>,
    error: Mutex<Option<String>>,
}

impl Job {
    /// Current phase.
    pub fn phase(&self) -> JobPhase {
        *relock(&self.phase)
    }

    fn set_phase(&self, p: JobPhase) {
        *relock(&self.phase) = p;
    }

    /// Infrastructure-error message, if the job [`JobPhase::Failed`].
    pub fn error(&self) -> Option<String> {
        relock(&self.error).clone()
    }

    /// Execute (or resume) this job's plan on the sweep pool, updating
    /// phase and progress as records land. Blocks until the sweep
    /// returns; callers spawn it on a detached thread.
    pub fn run(self: &Arc<Self>, workers: usize, halt_after: Option<usize>) {
        let plan = match SweepPlan::load(&self.plan_path) {
            Ok(p) => p,
            Err(e) => {
                *relock(&self.error) = Some(e.to_string());
                self.set_phase(JobPhase::Failed);
                return;
            }
        };
        // Progress restarts from the store's completed set: resumed
        // records skip the queue and never hit the record hook.
        let prior = load_records(&self.store_path)
            .map(|r| completed_ids(&r).len())
            .unwrap_or(0);
        self.done.store(prior, Ordering::SeqCst);
        let progress = Arc::clone(self);
        let opts = SweepOptions {
            workers,
            store_path: Some(self.store_path.clone()),
            events_path: Some(self.events_path.clone()),
            resume: true,
            halt_after_cases: halt_after,
            cancel: Some(Arc::clone(&self.cancel)),
            record_hook: Some(Arc::new(move |_outcome| {
                progress.done.fetch_add(1, Ordering::SeqCst);
            })),
            ..SweepOptions::default()
        };
        match run_sweep(&plan, &opts) {
            Ok(report) => self.set_phase(if self.cancel.load(Ordering::SeqCst) {
                JobPhase::Cancelled
            } else if report.halted {
                JobPhase::Halted
            } else {
                JobPhase::Completed
            }),
            Err(e) => {
                *relock(&self.error) = Some(e.to_string());
                self.set_phase(JobPhase::Failed);
            }
        }
    }
}

/// The daemon's job table: durable on disk, indexed in memory.
#[derive(Debug)]
pub struct JobRegistry {
    data_dir: String,
    jobs: Mutex<BTreeMap<String, Arc<Job>>>,
    next: AtomicUsize,
}

impl JobRegistry {
    /// Open (creating if needed) the registry at `data_dir` and rebuild
    /// the job table from the plan files found there.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on unreadable directories or corrupt
    /// plan/store files — a daemon must not silently shadow prior jobs.
    pub fn open(data_dir: &str) -> Result<Self, SolverError> {
        std::fs::create_dir_all(data_dir)
            .map_err(|e| SolverError::BadInput(format!("creating data dir '{data_dir}': {e}")))?;
        let reg = Self {
            data_dir: data_dir.to_string(),
            jobs: Mutex::new(BTreeMap::new()),
            next: AtomicUsize::new(1),
        };
        let entries = std::fs::read_dir(data_dir)
            .map_err(|e| SolverError::BadInput(format!("scanning data dir '{data_dir}': {e}")))?;
        let mut max_seq = 0usize;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name
                .strip_suffix(".plan.json")
                .filter(|id| id.starts_with("job-"))
            else {
                continue;
            };
            let job = reg.recover(id)?;
            if let Ok(seq) = id["job-".len()..].parse::<usize>() {
                max_seq = max_seq.max(seq);
            }
            relock(&reg.jobs).insert(id.to_string(), job);
        }
        reg.next.store(max_seq + 1, Ordering::SeqCst);
        Ok(reg)
    }

    /// Rebuild one job from its on-disk files, classifying it as
    /// completed or interrupted by comparing the store against the plan.
    fn recover(&self, id: &str) -> Result<Arc<Job>, SolverError> {
        let (plan_path, store_path, events_path) = self.paths(id);
        let plan = SweepPlan::load(&plan_path)?;
        let done = completed_ids(&load_records(&store_path)?).len();
        let phase = if done >= plan.cases.len() {
            JobPhase::Completed
        } else {
            JobPhase::Interrupted
        };
        Ok(Arc::new(Job {
            id: id.to_string(),
            plan_path,
            store_path,
            events_path,
            plan_name: plan.name.clone(),
            total: plan.cases.len(),
            done: AtomicUsize::new(done),
            cancel: Arc::new(AtomicBool::new(false)),
            phase: Mutex::new(phase),
            error: Mutex::new(None),
        }))
    }

    fn paths(&self, id: &str) -> (String, String, String) {
        let base = format!("{}/{id}", self.data_dir);
        (
            format!("{base}.plan.json"),
            format!("{base}.store.jsonl"),
            format!("{base}.events.jsonl"),
        )
    }

    /// Persist `plan` as a new job in phase [`JobPhase::Running`] and
    /// return it. The caller is responsible for actually spawning
    /// [`Job::run`] — registration and execution are split so the
    /// response can carry the id before the first case lands.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] if the plan fails validation or the
    /// plan file cannot be written.
    pub fn submit(&self, plan: &SweepPlan) -> Result<Arc<Job>, SolverError> {
        plan.validate()?;
        let seq = self.next.fetch_add(1, Ordering::SeqCst);
        let id = format!("job-{seq:04}");
        let (plan_path, store_path, events_path) = self.paths(&id);
        plan.save(&plan_path)?;
        let job = Arc::new(Job {
            id: id.clone(),
            plan_path,
            store_path,
            events_path,
            plan_name: plan.name.clone(),
            total: plan.cases.len(),
            done: AtomicUsize::new(0),
            cancel: Arc::new(AtomicBool::new(false)),
            phase: Mutex::new(JobPhase::Running),
            error: Mutex::new(None),
        });
        relock(&self.jobs).insert(id, Arc::clone(&job));
        Ok(job)
    }

    /// Look up a job by id.
    pub fn get(&self, id: &str) -> Option<Arc<Job>> {
        relock(&self.jobs).get(id).cloned()
    }

    /// All jobs in id order.
    pub fn list(&self) -> Vec<Arc<Job>> {
        relock(&self.jobs).values().cloned().collect()
    }

    /// Flip a resumable job back to [`JobPhase::Running`] with a fresh
    /// cancel flag, returning it ready for [`Job::run`].
    ///
    /// # Errors
    /// [`SolverError::BadInput`] if the job does not exist or is
    /// currently running.
    pub fn resume(&self, id: &str) -> Result<Arc<Job>, SolverError> {
        let job = self
            .get(id)
            .ok_or_else(|| SolverError::BadInput(format!("unknown job '{id}'")))?;
        if !job.phase().resumable() {
            return Err(SolverError::BadInput(format!(
                "job '{id}' is running; cancel it before resuming"
            )));
        }
        job.cancel.store(false, Ordering::SeqCst);
        job.set_phase(JobPhase::Running);
        Ok(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerothermo_sweep::{CaseSpec, FlowSpec, GasSpec, LevelSpec};

    fn tiny_plan(n: usize) -> SweepPlan {
        let cases = (0..n)
            .map(|k| {
                CaseSpec::new(
                    format!("c{k}"),
                    GasSpec::Air9,
                    LevelSpec::Correlation { k_sg: 1.74e-4 },
                    FlowSpec::new(3e-5, 7000.0, 220.0, 2.0, 0.5, 1500.0),
                )
            })
            .collect();
        SweepPlan {
            name: "registry-test".into(),
            cases,
        }
    }

    #[test]
    fn registry_roundtrip_and_interrupted_classification() {
        let dir = std::env::temp_dir().join(format!("aerothermod-reg-{}", std::process::id()));
        let dir = dir.to_str().unwrap().to_string();
        std::fs::remove_dir_all(&dir).ok();

        let reg = JobRegistry::open(&dir).unwrap();
        let job = reg.submit(&tiny_plan(3)).unwrap();
        assert_eq!(job.id, "job-0001");
        assert_eq!(job.phase(), JobPhase::Running);

        // Run to completion synchronously.
        job.run(1, None);
        assert_eq!(job.phase(), JobPhase::Completed);
        assert_eq!(job.done.load(Ordering::SeqCst), 3);

        // Submit a second job but only run 1 of its 3 cases.
        let partial = reg.submit(&tiny_plan(3)).unwrap();
        assert_eq!(partial.id, "job-0002");
        partial.run(1, Some(1));
        assert_eq!(partial.phase(), JobPhase::Halted);

        // A fresh registry (daemon restart) recovers both from disk.
        let reg2 = JobRegistry::open(&dir).unwrap();
        assert_eq!(reg2.list().len(), 2);
        assert_eq!(reg2.get("job-0001").unwrap().phase(), JobPhase::Completed);
        let back = reg2.get("job-0002").unwrap();
        assert_eq!(back.phase(), JobPhase::Interrupted);
        assert!(back.done.load(Ordering::SeqCst) < 3);

        // Ids keep counting from the recovered maximum.
        assert_eq!(reg2.submit(&tiny_plan(1)).unwrap().id, "job-0003");

        // Resume finishes the interrupted job.
        let resumed = reg2.resume("job-0002").unwrap();
        resumed.run(1, None);
        assert_eq!(resumed.phase(), JobPhase::Completed);
        assert_eq!(resumed.done.load(Ordering::SeqCst), 3);

        std::fs::remove_dir_all(&dir).ok();
    }
}
