//! Blocking client for the `aerothermod` line protocol, shared by the
//! `aeroctl` CLI, the integration drills, and CI.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use aerothermo_numerics::json::{self, write_f64, write_string, Value};
use aerothermo_numerics::telemetry::SolverError;
use aerothermo_sweep::SweepPlan;

/// One connection to a running daemon. Requests are serialized on the
/// connection: `call` writes a line and blocks for the response line.
pub struct Client {
    stream: UnixStream,
    pending: Vec<u8>,
}

impl Client {
    /// Connect to the daemon at `socket_path`.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] if the socket is absent or refuses.
    pub fn connect(socket_path: &str) -> Result<Self, SolverError> {
        let stream = UnixStream::connect(socket_path)
            .map_err(|e| SolverError::BadInput(format!("connecting to '{socket_path}': {e}")))?;
        Ok(Self {
            stream,
            pending: Vec::new(),
        })
    }

    /// Connect, retrying until the daemon binds its socket or `timeout`
    /// elapses — the startup handshake for freshly spawned daemons.
    ///
    /// # Errors
    /// The last connection error once the deadline passes.
    pub fn connect_with_retry(socket_path: &str, timeout: Duration) -> Result<Self, SolverError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(socket_path) {
                Ok(mut c) => match c.ping() {
                    Ok(()) => return Ok(c),
                    Err(e) if Instant::now() >= deadline => return Err(e),
                    Err(_) => {}
                },
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => {}
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Send one raw request line and return the parsed response value.
    /// `{"ok": false}` responses surface as `Err` carrying the server's
    /// error message.
    ///
    /// # Errors
    /// Transport failures, malformed responses, and server-side errors.
    pub fn call(&mut self, request: &str) -> Result<Value, SolverError> {
        let io = |e: std::io::Error| SolverError::BadInput(format!("daemon socket: {e}"));
        debug_assert!(!request.contains('\n'), "requests must be single lines");
        self.stream.write_all(request.as_bytes()).map_err(io)?;
        self.stream.write_all(b"\n").map_err(io)?;
        self.stream.flush().map_err(io)?;

        let line = self.read_line().map_err(io)?;
        let v = json::parse(&line)
            .map_err(|e| SolverError::BadInput(format!("daemon response JSON: {e}")))?;
        match v.get("ok") {
            Some(Value::Bool(true)) => Ok(v),
            Some(Value::Bool(false)) => Err(SolverError::BadInput(format!(
                "daemon error: {}",
                v.get("error").and_then(Value::as_str).unwrap_or("unknown")
            ))),
            _ => Err(SolverError::BadInput(format!(
                "daemon response missing 'ok': {line}"
            ))),
        }
    }

    /// Read bytes until one full newline-terminated response line.
    fn read_line(&mut self) -> std::io::Result<String> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.pending.drain(..=pos).collect();
                return Ok(String::from_utf8_lossy(&line).trim().to_string());
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection mid-response",
                ));
            }
            self.pending.extend_from_slice(&chunk[..n]);
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    /// Transport or protocol failures.
    pub fn ping(&mut self) -> Result<(), SolverError> {
        self.call("{\"op\": \"ping\"}").map(|_| ())
    }

    /// Submit `plan`, returning the assigned job id. `workers` and
    /// `halt_after` override the daemon defaults when given.
    ///
    /// # Errors
    /// Plan validation and transport failures.
    pub fn submit(
        &mut self,
        plan: &SweepPlan,
        workers: Option<usize>,
        halt_after: Option<usize>,
    ) -> Result<String, SolverError> {
        // The plan serializer is multi-line for on-disk readability;
        // collapse it for the line protocol (embedded string newlines
        // are escaped by the serializer, so this is purely structural).
        let plan_json = plan.to_json().replace('\n', " ");
        let mut req = String::from("{\"op\": \"submit\"");
        if let Some(w) = workers {
            req.push_str(&format!(", \"workers\": {w}"));
        }
        if let Some(k) = halt_after {
            req.push_str(&format!(", \"halt_after\": {k}"));
        }
        req.push_str(&format!(", \"plan\": {plan_json}}}"));
        let v = self.call(&req)?;
        v.get("job")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| SolverError::BadInput("submit response missing 'job'".into()))
    }

    /// Submit one shard of `plan` (`shard` is the `i/n` slice string;
    /// `strategy` is `round_robin`/`cost_balanced`, daemon default when
    /// `None`), returning the assigned job id.
    ///
    /// # Errors
    /// Plan/shard validation and transport failures.
    pub fn submit_shard(
        &mut self,
        plan: &SweepPlan,
        shard: &str,
        strategy: Option<&str>,
        workers: Option<usize>,
        halt_after: Option<usize>,
    ) -> Result<String, SolverError> {
        let plan_json = plan.to_json().replace('\n', " ");
        let mut req = format!(
            "{{\"op\": \"submit_shard\", \"shard\": {}",
            write_string(shard)
        );
        if let Some(s) = strategy {
            req.push_str(&format!(", \"strategy\": {}", write_string(s)));
        }
        if let Some(w) = workers {
            req.push_str(&format!(", \"workers\": {w}"));
        }
        if let Some(k) = halt_after {
            req.push_str(&format!(", \"halt_after\": {k}"));
        }
        req.push_str(&format!(", \"plan\": {plan_json}}}"));
        let v = self.call(&req)?;
        v.get("job")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| SolverError::BadInput("submit_shard response missing 'job'".into()))
    }

    /// Federate the stores of finished shard `jobs` into the canonical
    /// store; the response carries the merged store path and the
    /// federation report object.
    ///
    /// # Errors
    /// Unknown/running/mismatched jobs, conflicting overlaps, transport
    /// failures.
    pub fn federate(&mut self, jobs: &[String]) -> Result<Value, SolverError> {
        let ids = jobs
            .iter()
            .map(|j| write_string(j))
            .collect::<Vec<_>>()
            .join(", ");
        self.call(&format!("{{\"op\": \"federate\", \"jobs\": [{ids}]}}"))
    }

    /// Poll the status object for `job`.
    ///
    /// # Errors
    /// Unknown jobs and transport failures.
    pub fn status(&mut self, job: &str) -> Result<Value, SolverError> {
        self.call(&format!(
            "{{\"op\": \"status\", \"job\": {}}}",
            write_string(job)
        ))
    }

    /// Poll `status` until the phase leaves `running`, returning the
    /// final status object.
    ///
    /// # Errors
    /// Transport failures, or `BadInput` once `timeout` elapses.
    pub fn wait(&mut self, job: &str, timeout: Duration) -> Result<Value, SolverError> {
        self.wait_with(job, timeout, |_| {})
    }

    /// [`Client::wait`] with a per-poll observer: `on_poll` sees every
    /// still-running status object (the `aeroctl wait` progress line).
    ///
    /// Polling backs off exponentially — 50 ms doubling to a 1 s cap —
    /// so a long sweep costs a handful of requests instead of a busy
    /// 20 Hz status loop, while short jobs still return promptly.
    ///
    /// # Errors
    /// Transport failures, or `BadInput` once `timeout` elapses.
    pub fn wait_with(
        &mut self,
        job: &str,
        timeout: Duration,
        mut on_poll: impl FnMut(&Value),
    ) -> Result<Value, SolverError> {
        const BACKOFF_CAP: Duration = Duration::from_secs(1);
        let deadline = Instant::now() + timeout;
        let mut backoff = Duration::from_millis(50);
        loop {
            let st = self.status(job)?;
            let phase = st.get("phase").and_then(Value::as_str).unwrap_or("");
            if phase != "running" {
                return Ok(st);
            }
            on_poll(&st);
            let now = Instant::now();
            if now >= deadline {
                return Err(SolverError::BadInput(format!(
                    "timed out waiting for job '{job}' (still running)"
                )));
            }
            std::thread::sleep(backoff.min(deadline - now));
            backoff = (backoff * 2).min(BACKOFF_CAP);
        }
    }

    /// Fetch the per-case records of `job` (the raw store lines as
    /// parsed JSON values, in execution order).
    ///
    /// # Errors
    /// Unknown jobs and transport failures.
    pub fn results(&mut self, job: &str) -> Result<Value, SolverError> {
        self.call(&format!(
            "{{\"op\": \"results\", \"job\": {}}}",
            write_string(job)
        ))
    }

    /// Raise the cooperative cancel flag on `job`.
    ///
    /// # Errors
    /// Unknown jobs and transport failures.
    pub fn cancel(&mut self, job: &str) -> Result<Value, SolverError> {
        self.call(&format!(
            "{{\"op\": \"cancel\", \"job\": {}}}",
            write_string(job)
        ))
    }

    /// Resume an interrupted/halted/cancelled job through the store's
    /// completed-case skip logic.
    ///
    /// # Errors
    /// Unknown or still-running jobs, and transport failures.
    pub fn resume(&mut self, job: &str, workers: Option<usize>) -> Result<Value, SolverError> {
        let mut req = format!("{{\"op\": \"resume\", \"job\": {}", write_string(job));
        if let Some(w) = workers {
            req.push_str(&format!(", \"workers\": {w}"));
        }
        req.push('}');
        self.call(&req)
    }

    /// One stagnation-heating query at `(altitude [m], velocity [m/s])`.
    ///
    /// # Errors
    /// Exact-path evaluation and transport failures.
    pub fn query(&mut self, altitude: f64, velocity: f64) -> Result<Value, SolverError> {
        self.call(&format!(
            "{{\"op\": \"query\", \"altitude\": {}, \"velocity\": {}}}",
            write_f64(altitude),
            write_f64(velocity),
        ))
    }

    /// Batched stagnation-heating queries.
    ///
    /// # Errors
    /// Length mismatches, exact-path evaluation, transport failures.
    pub fn query_batch(
        &mut self,
        altitude: &[f64],
        velocity: &[f64],
    ) -> Result<Value, SolverError> {
        let list = |xs: &[f64]| {
            xs.iter()
                .map(|&x| write_f64(x))
                .collect::<Vec<_>>()
                .join(", ")
        };
        self.call(&format!(
            "{{\"op\": \"query_batch\", \"altitude\": [{}], \"velocity\": [{}]}}",
            list(altitude),
            list(velocity),
        ))
    }

    /// Fetch the daemon's metrics exposition. `format` is
    /// `"prometheus"` (default wire format, returned as a string field)
    /// or `"json"` (returned as a structured object).
    ///
    /// # Errors
    /// Unknown formats and transport failures.
    pub fn metrics(&mut self, format: &str) -> Result<Value, SolverError> {
        self.call(&format!(
            "{{\"op\": \"metrics\", \"format\": {}}}",
            write_string(format),
        ))
    }

    /// Ask the daemon to stop accepting and exit.
    ///
    /// # Errors
    /// Transport failures.
    pub fn shutdown(&mut self) -> Result<(), SolverError> {
        self.call("{\"op\": \"shutdown\"}").map(|_| ())
    }
}
