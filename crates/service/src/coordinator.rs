//! Coordinator mode: one `aerothermod` process orchestrating a fleet of
//! per-shard child daemons over the existing UDS protocol.
//!
//! The coordinator spawns `shards` child daemons (each with its own
//! socket and data directory under the root), submits shard `i/n` of the
//! plan to child `i` via `submit_shard`, and then monitors the fleet:
//! a child that dies (SIGKILL, OOM, crash) is respawned on the same data
//! directory — the registry recovers its job as `interrupted` — and its
//! job is `resume`d, continuing exactly where the store left off. When
//! every shard completes, the coordinator shuts the children down and
//! federates their stores into the canonical plan-order store.
//!
//! Everything a child computes is bitwise-deterministic per case, so the
//! coordinator's federated store equals the single-process store under
//! the order-normalized fingerprint — kills and respawns included.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use aerothermo_numerics::json::Value;
use aerothermo_numerics::telemetry::SolverError;
use aerothermo_sweep::shard::{federate_to_store, FederationReport, ShardSpec};
use aerothermo_sweep::{ShardStrategy, SweepPlan};

use crate::Client;

/// Fleet policy for [`run_coordinated_sweep`].
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Path of the `aerothermod` binary to spawn for each shard.
    pub daemon_exe: String,
    /// Shard count (child daemons).
    pub shards: usize,
    /// Case-assignment strategy shared by every shard.
    pub strategy: ShardStrategy,
    /// Sweep workers per child daemon.
    pub workers: usize,
    /// Root directory for child sockets, data dirs, and the federated
    /// store (created if missing).
    pub root_dir: String,
    /// Fleet status poll cadence.
    pub poll_interval: Duration,
    /// Overall wall-clock budget for the coordinated run.
    pub timeout: Duration,
    /// Respawn budget *per shard*: a child dying more often than this
    /// fails the run instead of looping forever.
    pub max_respawns: usize,
}

impl CoordinatorConfig {
    /// Defaults for a fleet rooted at `root_dir` spawning `daemon_exe`.
    #[must_use]
    pub fn new(daemon_exe: &str, root_dir: &str, shards: usize) -> Self {
        Self {
            daemon_exe: daemon_exe.to_string(),
            shards: shards.max(1),
            strategy: ShardStrategy::default(),
            workers: 1,
            root_dir: root_dir.to_string(),
            poll_interval: Duration::from_millis(50),
            timeout: Duration::from_secs(600),
            max_respawns: 3,
        }
    }
}

/// Per-shard outcome of a coordinated run.
#[derive(Debug)]
pub struct ShardRun {
    /// The shard this child ran.
    pub shard: ShardSpec,
    /// Child daemon socket path.
    pub socket: String,
    /// Child registry id of the shard job.
    pub job: String,
    /// The shard's JSONL store path.
    pub store: String,
    /// Times the child was respawned after dying mid-run.
    pub respawns: usize,
}

/// A completed coordinated sweep: the canonical federated store plus the
/// per-shard trail.
#[derive(Debug)]
pub struct CoordinatedSweep {
    /// Canonical federated store path (`{root_dir}/federated.jsonl`).
    pub store_path: String,
    /// The federation report over the shard stores.
    pub report: FederationReport,
    /// Per-shard outcomes, shard order.
    pub shards: Vec<ShardRun>,
}

/// One child daemon plus its live coordination state.
struct ShardChild {
    spec: ShardSpec,
    socket: String,
    data_dir: String,
    child: Child,
    job: Option<String>,
    store: Option<String>,
    respawns: usize,
    done: bool,
}

/// Kill every still-running child on scope exit (error paths included);
/// cleanly shut-down children have already exited and kill is a no-op.
struct FleetGuard<'a>(&'a mut Vec<ShardChild>);

impl Drop for FleetGuard<'_> {
    fn drop(&mut self) {
        for s in self.0.iter_mut() {
            let _ = s.child.kill();
            let _ = s.child.wait();
        }
    }
}

fn spawn_daemon(
    cfg: &CoordinatorConfig,
    socket: &str,
    data_dir: &str,
) -> Result<Child, SolverError> {
    Command::new(&cfg.daemon_exe)
        .arg(format!("--socket={socket}"))
        .arg(format!("--data-dir={data_dir}"))
        .arg(format!("--workers={}", cfg.workers.max(1)))
        .arg("--accept-threads=1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| {
            SolverError::BadInput(format!("spawning shard daemon '{}': {e}", cfg.daemon_exe))
        })
}

fn connect(socket: &str) -> Result<Client, SolverError> {
    Client::connect_with_retry(socket, Duration::from_secs(10))
}

/// Run `plan` across a coordinated fleet of child daemons and federate
/// the result. Blocks until the canonical store is written (or the run
/// fails); see the module docs for the lifecycle.
///
/// # Errors
/// [`SolverError::BadInput`] on spawn/protocol failures, a shard
/// exceeding its respawn budget, a shard job reporting `failed`, the
/// overall timeout, or a federation conflict.
pub fn run_coordinated_sweep(
    plan: &SweepPlan,
    cfg: &CoordinatorConfig,
) -> Result<CoordinatedSweep, SolverError> {
    plan.validate()?;
    std::fs::create_dir_all(&cfg.root_dir).map_err(|e| {
        SolverError::BadInput(format!("creating coordinator root '{}': {e}", cfg.root_dir))
    })?;
    let deadline = Instant::now() + cfg.timeout;
    let mut fleet: Vec<ShardChild> = Vec::with_capacity(cfg.shards);
    for i in 0..cfg.shards.max(1) {
        let spec = ShardSpec::new(i, cfg.shards.max(1), cfg.strategy)?;
        let socket = format!("{}/shard-{i}.sock", cfg.root_dir);
        let data_dir = format!("{}/shard-{i}.data", cfg.root_dir);
        let child = spawn_daemon(cfg, &socket, &data_dir)?;
        fleet.push(ShardChild {
            spec,
            socket,
            data_dir,
            child,
            job: None,
            store: None,
            respawns: 0,
            done: false,
        });
    }
    let guard = FleetGuard(&mut fleet);
    let fleet = &mut *guard.0;

    // Submit each shard its slice (children compute the identical
    // partition from the full plan — the spec is just named here).
    for s in fleet.iter_mut() {
        let mut c = connect(&s.socket)?;
        let job = c.submit_shard(
            plan,
            &s.spec.to_string(),
            Some(s.spec.strategy.name()),
            Some(cfg.workers.max(1)),
            None,
        )?;
        s.job = Some(job);
    }

    // Monitor: poll each unfinished shard; respawn+resume dead children.
    while fleet.iter().any(|s| !s.done) {
        if Instant::now() >= deadline {
            return Err(SolverError::BadInput(format!(
                "coordinated sweep timed out after {:?}",
                cfg.timeout
            )));
        }
        for s in fleet.iter_mut() {
            if s.done {
                continue;
            }
            // A dead child first: respawn on the same data dir, then
            // resume its recovered (interrupted) job.
            if s.child.try_wait().ok().flatten().is_some() {
                s.respawns += 1;
                if s.respawns > cfg.max_respawns {
                    return Err(SolverError::BadInput(format!(
                        "shard {} died {} times (budget {}); giving up",
                        s.spec, s.respawns, cfg.max_respawns
                    )));
                }
                s.child = spawn_daemon(cfg, &s.socket, &s.data_dir)?;
                let mut c = connect(&s.socket)?;
                match &s.job {
                    // Killed after submit: the registry recovered the job
                    // from disk; resume it through the store's skip logic.
                    Some(job) => {
                        c.resume(job, Some(cfg.workers.max(1)))?;
                    }
                    // Killed before the plan was persisted: submit anew.
                    None => {
                        let job = c.submit_shard(
                            plan,
                            &s.spec.to_string(),
                            Some(s.spec.strategy.name()),
                            Some(cfg.workers.max(1)),
                            None,
                        )?;
                        s.job = Some(job);
                    }
                }
                continue;
            }
            let Some(job) = s.job.clone() else { continue };
            let st = match connect(&s.socket).and_then(|mut c| c.status(&job)) {
                Ok(st) => st,
                // The child may have died between try_wait and the call;
                // the next tick's try_wait sees it and respawns.
                Err(_) => continue,
            };
            match st.get("phase").and_then(Value::as_str).unwrap_or("") {
                "completed" => {
                    s.store = st.get("store").and_then(Value::as_str).map(str::to_string);
                    s.done = true;
                }
                "failed" => {
                    return Err(SolverError::BadInput(format!(
                        "shard {} job '{job}' failed: {}",
                        s.spec,
                        st.get("error").and_then(Value::as_str).unwrap_or("unknown")
                    )));
                }
                // A live daemon whose job stopped early (halted or
                // cancelled out-of-band): push it forward again.
                "halted" | "cancelled" | "interrupted" => {
                    if let Ok(mut c) = connect(&s.socket) {
                        let _ = c.resume(&job, Some(cfg.workers.max(1)));
                    }
                }
                _ => {}
            }
        }
        std::thread::sleep(cfg.poll_interval);
    }

    // Fleet drained: shut children down cleanly, then federate.
    for s in fleet.iter_mut() {
        if let Ok(mut c) = connect(&s.socket) {
            let _ = c.shutdown();
        }
        let _ = s.child.wait();
    }
    let stores: Vec<String> = fleet
        .iter()
        .map(|s| {
            s.store.clone().ok_or_else(|| {
                SolverError::BadInput(format!("shard {} finished without a store path", s.spec))
            })
        })
        .collect::<Result<_, _>>()?;
    let store_path = format!("{}/federated.jsonl", cfg.root_dir);
    let report = federate_to_store(plan, &stores, &store_path)?;
    let shards = fleet
        .iter()
        .map(|s| ShardRun {
            shard: s.spec,
            socket: s.socket.clone(),
            job: s.job.clone().unwrap_or_default(),
            store: s.store.clone().unwrap_or_default(),
            respawns: s.respawns,
        })
        .collect();
    Ok(CoordinatedSweep {
        store_path,
        report,
        shards,
    })
}
