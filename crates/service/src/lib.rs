//! Persistent aerothermodynamics service: a long-running daemon
//! (`aerothermod`) serving sweep plans and stagnation-heating queries
//! over a Unix domain socket.
//!
//! The sweep engine (`aerothermo_sweep`) already amortizes solver setup
//! across the cases of one plan, but every *process* launch still pays
//! the expensive warm-up tolls: building the equilibrium gas table,
//! adaptively sampling the heating surrogate, and spinning up the worker
//! pool. A trajectory-design loop that submits many small plans and
//! thousands of point queries pays those tolls over and over. This crate
//! keeps them resident:
//!
//! * [`server`] — the daemon: a bounded accept pool (no async runtime;
//!   N threads blocked in `accept()` on one shared listener) speaking a
//!   line-delimited JSON protocol, dispatching to the job registry and
//!   the resident query engine.
//! * [`jobs`] — on-disk job registry: every submitted plan becomes
//!   `job-NNNN.{plan.json,store.jsonl,events.jsonl}` under the data
//!   directory, executed on the existing [`aerothermo_sweep::run_sweep`]
//!   pool with the crash-safe JSONL store as the job journal. Jobs
//!   survive daemon restarts: a startup scan classifies finished versus
//!   interrupted jobs, and `resume` re-enters the store's skip logic.
//! * [`client`] — a blocking [`client::Client`] used by `aeroctl`, the
//!   integration drills, and CI.
//! * [`coordinator`] — distributed sweeps: one coordinator process
//!   spawning per-shard child daemons, resuming any shard that dies, and
//!   federating the shard stores into the canonical plan-order store.
//!
//! # Protocol
//!
//! One JSON object per line in each direction. Requests carry an `"op"`
//! field; responses are `{"ok": true, ...}` or
//! `{"ok": false, "error": "..."}`. Ops: `ping`, `submit`,
//! `submit_shard`, `federate`, `status`, `results`, `cancel`, `resume`,
//! `query`, `query_batch`, `metrics`, `shutdown`. See `README.md`
//! § Service for the full schemas.
//!
//! # Determinism
//!
//! The daemon adds *no* numerical path of its own: submitted plans run
//! through the same `run_sweep` the CLI uses (per-case thread pinning,
//! cold per-case warm caches), so per-case records served from a job
//! store are bitwise identical to a direct in-process sweep — including
//! after a kill/restart/resume cycle. The integration drill in
//! `tests/determinism_drill.rs` enforces exactly that.

#![warn(missing_docs)]

pub mod client;
pub mod coordinator;
pub mod jobs;
pub mod server;

pub use client::Client;
pub use coordinator::{run_coordinated_sweep, CoordinatedSweep, CoordinatorConfig};
pub use jobs::{JobPhase, JobRegistry};
pub use server::Daemon;

/// Daemon configuration: socket, data directory, pool sizes, and the
/// resident surrogate corridor.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Unix-domain socket path the daemon binds.
    pub socket_path: String,
    /// Directory holding per-job plan/store/events files.
    pub data_dir: String,
    /// Accept-pool size: threads concurrently blocked in `accept()`.
    /// Excess connections queue in the kernel backlog.
    pub accept_threads: usize,
    /// Default sweep worker count for submitted jobs (a `submit` request
    /// may override per job).
    pub workers: usize,
    /// Surrogate corridor `((h_lo, h_hi) [m], (v_lo, v_hi) [m/s])` for
    /// the resident stagnation-heating table. Queries outside it fall
    /// back to the exact response path.
    pub corridor: ((f64, f64), (f64, f64)),
    /// Initial surrogate grid `(n_altitude, n_velocity)` before adaptive
    /// refinement.
    pub grid: (usize, usize),
    /// Surrogate max-relative-error tolerance.
    pub tolerance: f64,
    /// Nose radius \[m\] of the resident query engine's body.
    pub nose_radius: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            socket_path: "aerothermod.sock".into(),
            data_dir: "aerothermod-data".into(),
            accept_threads: 4,
            workers: 2,
            corridor: ((40_000.0, 80_000.0), (4_000.0, 13_000.0)),
            grid: (17, 17),
            tolerance: 0.02,
            nose_radius: 0.6,
        }
    }
}
