//! The `aerothermod` daemon: a bounded accept pool on one Unix-domain
//! listener, a line-delimited JSON dispatch loop, and the resident query
//! engine (equilibrium gas table + adaptively sampled heating surrogate)
//! that makes repeat queries cheap.
//!
//! No async runtime: `accept_threads` OS threads block in `accept()` on
//! the shared listener, and each serves its connection to completion
//! (thread-per-connection on a bounded pool; excess connections queue in
//! the kernel backlog). Sweep jobs run on detached threads through the
//! existing [`aerothermo_sweep::run_sweep`] worker pool, so the protocol
//! layer adds no numerical path of its own.

use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use aerothermo_atmosphere::us76::Us76;
use aerothermo_core::surrogate::{ExactResponse, RadiativeModel, StagnationResponse};
use aerothermo_core::{HeatingModel, SurrogateBuilder, SurrogateQuery, SurrogateTable};
use aerothermo_gas::eq_table::air9_table;
use aerothermo_numerics::json::{self, write_f64, write_string, Value};
use aerothermo_numerics::metrics;
use aerothermo_numerics::telemetry::{counters, Counter, SolverError};
use aerothermo_sweep::{ShardSpec, ShardStrategy, SweepPlan};

use crate::jobs::{Job, JobRegistry};
use crate::ServiceConfig;

/// Recover from poisoning instead of cascading (a panicking handler is
/// already contained by `catch_unwind`; its locks must stay usable).
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State shared by every accept thread.
struct Shared {
    cfg: ServiceConfig,
    jobs: JobRegistry,
    /// The resident heating surrogate, built lazily on first query and
    /// then reused by every later request on every connection.
    table: Mutex<Option<Arc<SurrogateTable>>>,
    stop: AtomicBool,
}

impl Shared {
    /// The exact stagnation-response path the surrogate approximates
    /// (and the fallback for out-of-corridor queries). The equilibrium
    /// air table behind it is `OnceLock`-resident for the process
    /// lifetime — the warm cache this daemon exists to keep.
    fn exact_response(&self) -> ExactResponse<'static> {
        ExactResponse {
            atmosphere: &Us76,
            gas: air9_table(),
            model: HeatingModel::earth_sutton_graves(),
            radiative: RadiativeModel::TauberSuttonEarthSmooth,
            nose_radius: self.cfg.nose_radius,
        }
    }

    /// Return the resident surrogate, building it on first use. The
    /// build runs under the lock so concurrent first queries wait for
    /// one build instead of racing duplicates.
    fn ensure_table(&self) -> Result<Arc<SurrogateTable>, SolverError> {
        let mut guard = relock(&self.table);
        if let Some(t) = guard.as_ref() {
            return Ok(Arc::clone(t));
        }
        let (h_range, v_range) = self.cfg.corridor;
        let mut exact = self.exact_response();
        let table = SurrogateBuilder::new(h_range, v_range)
            .initial_grid(self.cfg.grid.0, self.cfg.grid.1)
            .tolerance(self.cfg.tolerance)
            .build(&mut exact)?;
        let table = Arc::new(table);
        *guard = Some(Arc::clone(&table));
        Ok(table)
    }

    /// Answer one heating query: surrogate inside the corridor, exact
    /// path (counted as a fallback) outside it.
    fn answer(&self, altitude: f64, velocity: f64) -> Result<(SurrogateQuery, bool), SolverError> {
        let table = self.ensure_table()?;
        if table.contains(altitude, velocity) {
            Ok((table.query(altitude, velocity), false))
        } else {
            counters::add(Counter::SurrogateExactFallbacks, 1);
            let q = self.exact_response().evaluate(altitude, velocity)?;
            Ok((q, true))
        }
    }
}

/// A running daemon: the bound listener plus its accept pool.
pub struct Daemon {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Bind the socket, recover the job registry from the data
    /// directory, and start the accept pool. Returns once the daemon is
    /// accepting connections.
    ///
    /// A stale socket file (previous daemon killed without cleanup) is
    /// detected by a probe connect and removed; a *live* daemon on the
    /// same path is an error.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on bind failures, a live socket
    /// occupant, or an unreadable/corrupt data directory.
    pub fn start(cfg: ServiceConfig) -> Result<Self, SolverError> {
        let jobs = JobRegistry::open(&cfg.data_dir)?;
        let listener = Arc::new(bind_or_replace_stale(&cfg.socket_path)?);
        let shared = Arc::new(Shared {
            cfg,
            jobs,
            table: Mutex::new(None),
            stop: AtomicBool::new(false),
        });
        let handles = (0..shared.cfg.accept_threads.max(1))
            .map(|k| {
                let shared = Arc::clone(&shared);
                let listener = Arc::clone(&listener);
                std::thread::Builder::new()
                    .name(format!("aerothermod-accept-{k}"))
                    .spawn(move || accept_loop(&shared, &listener))
                    .expect("spawning accept thread")
            })
            .collect();
        Ok(Self { shared, handles })
    }

    /// The bound socket path.
    #[must_use]
    pub fn socket_path(&self) -> &str {
        &self.shared.cfg.socket_path
    }

    /// Jobs currently known to the registry (recovered + submitted).
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.shared.jobs.list().len()
    }

    /// Block until a `shutdown` request stops the daemon, then join the
    /// accept pool and remove the socket file.
    pub fn run_until_shutdown(self) {
        for h in self.handles {
            let _ = h.join();
        }
        std::fs::remove_file(&self.shared.cfg.socket_path).ok();
    }
}

/// Bind `path`, replacing a *stale* socket file (probe connect refused)
/// but refusing to evict a live daemon.
fn bind_or_replace_stale(path: &str) -> Result<UnixListener, SolverError> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == ErrorKind::AddrInUse => {
            if UnixStream::connect(path).is_ok() {
                return Err(SolverError::BadInput(format!(
                    "socket '{path}' is already served by a live daemon"
                )));
            }
            std::fs::remove_file(path).map_err(|e| {
                SolverError::BadInput(format!("removing stale socket '{path}': {e}"))
            })?;
            UnixListener::bind(path)
                .map_err(|e| SolverError::BadInput(format!("binding '{path}': {e}")))
        }
        Err(e) => Err(SolverError::BadInput(format!("binding '{path}': {e}"))),
    }
}

/// One accept thread: block in `accept()`, serve the connection to
/// completion, repeat until the stop flag is raised (a `shutdown`
/// handler wakes blocked siblings with dummy connects).
fn accept_loop(shared: &Arc<Shared>, listener: &UnixListener) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                serve_connection(shared, stream);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Serve one connection: hand-rolled newline framing (a `BufReader`
/// would drop partial lines across read-timeout ticks), one response
/// line per request line, until EOF or shutdown.
fn serve_connection(shared: &Arc<Shared>, mut stream: UnixStream) {
    // The periodic timeout lets the thread notice a shutdown raised on
    // another connection instead of blocking forever on an idle client.
    stream
        .set_read_timeout(Some(Duration::from_millis(250)))
        .ok();
    let mut out = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = pending.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line);
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let resp = respond(shared, line);
                    let write = out
                        .write_all(resp.as_bytes())
                        .and_then(|()| out.write_all(b"\n"))
                        .and_then(|()| out.flush());
                    if write.is_err() {
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn err_json(msg: &str) -> String {
    format!("{{\"ok\": false, \"error\": {}}}", write_string(msg))
}

/// Produce exactly one response line for one request line. Handler
/// panics are contained per request: the connection (and daemon) stay
/// up and the client sees a structured error.
fn respond(shared: &Arc<Shared>, line: &str) -> String {
    match catch_unwind(AssertUnwindSafe(|| handle(shared, line))) {
        Ok(Ok(resp)) => resp,
        Ok(Err(e)) => err_json(&e.to_string()),
        Err(_) => err_json("internal error: request handler panicked"),
    }
}

fn req_job(shared: &Shared, v: &Value) -> Result<Arc<Job>, SolverError> {
    let id = v
        .get("job")
        .and_then(Value::as_str)
        .ok_or_else(|| SolverError::BadInput("request missing string 'job'".into()))?;
    shared
        .jobs
        .get(id)
        .ok_or_else(|| SolverError::BadInput(format!("unknown job '{id}'")))
}

fn req_f64(v: &Value, key: &str) -> Result<f64, SolverError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| SolverError::BadInput(format!("request missing number '{key}'")))
}

fn opt_usize(v: &Value, key: &str) -> Result<Option<usize>, SolverError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) if x.is_null() => Ok(None),
        Some(x) => x
            .as_f64()
            .filter(|n| n.fract() == 0.0 && *n >= 0.0)
            .map(|n| Some(n as usize))
            .ok_or_else(|| {
                SolverError::BadInput(format!("'{key}' must be a non-negative integer"))
            }),
    }
}

fn status_json(job: &Job) -> String {
    format!(
        "{{\"ok\": true, \"job\": {}, \"plan\": {}, \"phase\": {}, \"done\": {}, \
         \"total\": {}, \"error\": {}, \"store\": {}, \"events\": {}, \"shard\": {}}}",
        write_string(&job.id),
        write_string(&job.plan_name),
        write_string(job.phase().name()),
        job.done.load(Ordering::SeqCst).min(job.total),
        job.total,
        job.error()
            .map_or_else(|| "null".into(), |e| write_string(&e)),
        write_string(&job.store_path),
        write_string(&job.events_path),
        job.shard
            .map_or_else(|| "null".into(), |s| write_string(&s.to_string())),
    )
}

fn query_item(altitude: f64, velocity: f64, q: &SurrogateQuery, exact: bool) -> String {
    format!(
        "{{\"altitude\": {}, \"velocity\": {}, \"p_stag\": {}, \"t_stag\": {}, \
         \"q_conv\": {}, \"q_rad\": {}, \"exact\": {exact}}}",
        write_f64(altitude),
        write_f64(velocity),
        write_f64(q.p_stag),
        write_f64(q.t_stag),
        write_f64(q.q_conv),
        write_f64(q.q_rad),
    )
}

/// Spawn a detached sweep thread for `job`.
fn spawn_run(job: Arc<Job>, workers: usize, halt_after: Option<usize>) {
    std::thread::Builder::new()
        .name(format!("aerothermod-{}", job.id))
        .spawn(move || job.run(workers, halt_after))
        .expect("spawning job thread");
}

fn handle(shared: &Arc<Shared>, line: &str) -> Result<String, SolverError> {
    let v = json::parse(line).map_err(|e| SolverError::BadInput(format!("request JSON: {e}")))?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| SolverError::BadInput("request missing string 'op'".into()))?;
    match op {
        "ping" => Ok(format!(
            "{{\"ok\": true, \"pong\": true, \"pid\": {}, \"jobs\": {}}}",
            std::process::id(),
            shared.jobs.list().len(),
        )),
        "submit" => {
            let plan_v = v
                .get("plan")
                .ok_or_else(|| SolverError::BadInput("submit missing object 'plan'".into()))?;
            let plan = SweepPlan::from_json(plan_v)?;
            let workers = opt_usize(&v, "workers")?
                .unwrap_or(shared.cfg.workers)
                .max(1);
            let halt_after = opt_usize(&v, "halt_after")?;
            let job = shared.jobs.submit(&plan)?;
            let (id, total) = (job.id.clone(), job.total);
            spawn_run(job, workers, halt_after);
            Ok(format!(
                "{{\"ok\": true, \"job\": {}, \"planned\": {total}}}",
                write_string(&id),
            ))
        }
        "submit_shard" => {
            let plan_v = v.get("plan").ok_or_else(|| {
                SolverError::BadInput("submit_shard missing object 'plan'".into())
            })?;
            let plan = SweepPlan::from_json(plan_v)?;
            let shard_s = v.get("shard").and_then(Value::as_str).ok_or_else(|| {
                SolverError::BadInput("submit_shard missing string 'shard' (i/n)".into())
            })?;
            let strategy = match v.get("strategy").and_then(Value::as_str) {
                Some(s) => ShardStrategy::parse(s)?,
                None => ShardStrategy::default(),
            };
            let spec = ShardSpec::parse(shard_s, strategy)?;
            let workers = opt_usize(&v, "workers")?
                .unwrap_or(shared.cfg.workers)
                .max(1);
            let halt_after = opt_usize(&v, "halt_after")?;
            let job = shared.jobs.submit_shard(&plan, spec)?;
            let (id, total) = (job.id.clone(), job.total);
            spawn_run(job, workers, halt_after);
            Ok(format!(
                "{{\"ok\": true, \"job\": {}, \"planned\": {total}, \"shard\": {}}}",
                write_string(&id),
                write_string(&spec.to_string()),
            ))
        }
        "federate" => {
            let ids: Vec<String> = v
                .get("jobs")
                .and_then(Value::as_array)
                .ok_or_else(|| SolverError::BadInput("federate missing array 'jobs'".into()))?
                .iter()
                .map(|x| {
                    x.as_str().map(str::to_string).ok_or_else(|| {
                        SolverError::BadInput("'jobs' entries must be job id strings".into())
                    })
                })
                .collect::<Result<_, _>>()?;
            let (store, report) = shared.jobs.federate(&ids)?;
            // The report serializer is multi-line for on-disk readability;
            // collapse it for the line protocol (string newlines are
            // escaped by the writer, so this is purely structural).
            let report_json = report.to_json().replace('\n', " ");
            Ok(format!(
                "{{\"ok\": true, \"store\": {}, \"report\": {}}}",
                write_string(&store),
                report_json.trim(),
            ))
        }
        "status" => {
            let job = req_job(shared, &v)?;
            Ok(status_json(&job))
        }
        "results" => {
            let job = req_job(shared, &v)?;
            let doc = std::fs::read_to_string(&job.store_path).unwrap_or_default();
            // A torn trailing line (daemon killed mid-write) is dropped,
            // matching the store loader's crash tolerance.
            let mut lines: Vec<&str> = doc.lines().filter(|l| !l.trim().is_empty()).collect();
            if !doc.ends_with('\n') {
                lines.pop();
            }
            Ok(format!(
                "{{\"ok\": true, \"job\": {}, \"records\": [{}]}}",
                write_string(&job.id),
                lines.join(", "),
            ))
        }
        "cancel" => {
            let job = req_job(shared, &v)?;
            job.cancel.store(true, Ordering::SeqCst);
            Ok(status_json(&job))
        }
        "resume" => {
            let id = v
                .get("job")
                .and_then(Value::as_str)
                .ok_or_else(|| SolverError::BadInput("request missing string 'job'".into()))?;
            let workers = opt_usize(&v, "workers")?
                .unwrap_or(shared.cfg.workers)
                .max(1);
            let halt_after = opt_usize(&v, "halt_after")?;
            let job = shared.jobs.resume(id)?;
            let resp = status_json(&job);
            spawn_run(job, workers, halt_after);
            Ok(resp)
        }
        "query" => {
            let (h, u) = (req_f64(&v, "altitude")?, req_f64(&v, "velocity")?);
            let (q, exact) = shared.answer(h, u)?;
            Ok(format!(
                "{{\"ok\": true, \"result\": {}}}",
                query_item(h, u, &q, exact),
            ))
        }
        "query_batch" => {
            let nums = |key: &str| -> Result<Vec<f64>, SolverError> {
                v.get(key)
                    .and_then(Value::as_array)
                    .ok_or_else(|| {
                        SolverError::BadInput(format!("query_batch missing array '{key}'"))
                    })?
                    .iter()
                    .map(|x| {
                        x.as_f64().ok_or_else(|| {
                            SolverError::BadInput(format!("'{key}' entries must be numbers"))
                        })
                    })
                    .collect()
            };
            let (hs, us) = (nums("altitude")?, nums("velocity")?);
            if hs.len() != us.len() {
                return Err(SolverError::BadInput(format!(
                    "query_batch length mismatch: {} altitudes vs {} velocities",
                    hs.len(),
                    us.len()
                )));
            }
            let mut items = Vec::with_capacity(hs.len());
            let mut fallbacks = 0usize;
            for (&h, &u) in hs.iter().zip(&us) {
                let (q, exact) = shared.answer(h, u)?;
                fallbacks += usize::from(exact);
                items.push(query_item(h, u, &q, exact));
            }
            Ok(format!(
                "{{\"ok\": true, \"n\": {}, \"exact_fallbacks\": {fallbacks}, \"results\": [{}]}}",
                items.len(),
                items.join(", "),
            ))
        }
        "metrics" => {
            let format = v
                .get("format")
                .and_then(Value::as_str)
                .unwrap_or("prometheus");
            let snap = metrics::snapshot();
            match format {
                "prometheus" => Ok(format!(
                    "{{\"ok\": true, \"format\": \"prometheus\", \"metrics\": {}}}",
                    write_string(&snap.prometheus_text()),
                )),
                "json" => Ok(format!(
                    "{{\"ok\": true, \"format\": \"json\", \"metrics\": {}}}",
                    snap.to_json(),
                )),
                other => Err(SolverError::BadInput(format!(
                    "unknown metrics format '{other}' (expected 'prometheus' or 'json')"
                ))),
            }
        }
        "shutdown" => {
            shared.stop.store(true, Ordering::SeqCst);
            // Wake siblings blocked in accept(); each accepted dummy is
            // dropped after the post-accept stop check.
            for _ in 0..shared.cfg.accept_threads.max(1) {
                UnixStream::connect(&shared.cfg.socket_path).ok();
            }
            Ok("{\"ok\": true, \"stopping\": true}".into())
        }
        other => Err(SolverError::BadInput(format!("unknown op '{other}'"))),
    }
}
