//! Distributed-shard drill at the service layer: shard jobs submitted to
//! live daemons — one killed mid-shard and resumed after a restart —
//! must federate into a store bitwise identical (order-normalized) to a
//! direct in-process sweep. Plus: the coordinator fleet end to end.

use std::process::{Child, Command, Stdio};
use std::time::Duration;

use aerothermo_numerics::json::Value;
use aerothermo_service::{run_coordinated_sweep, Client, CoordinatorConfig};
use aerothermo_sweep::{
    load_records, normalized_fingerprint, run_sweep, CaseSpec, FlowSpec, GasSpec, LevelSpec,
    ShardStrategy, SweepOptions, SweepPlan,
};

/// The CI smoke plan (4 correlation + 2 VSL cases) — same numbers the
/// determinism drill and the workflow shard-drill exercise.
fn smoke_plan() -> SweepPlan {
    let air = |rho: f64, u: f64| FlowSpec::new(rho, u, 220.0, f64::NAN, 0.5, 1500.0);
    let titan = |rho: f64, u: f64| FlowSpec::new(rho, u, 165.0, f64::NAN, 0.6, 1800.0);
    let corr_air = LevelSpec::Correlation { k_sg: 0.000174 };
    let corr_titan = LevelSpec::Correlation { k_sg: 0.00017 };
    let vsl = LevelSpec::Vsl {
        n_points: 20,
        radiating: false,
    };
    let titan_gas = GasSpec::Titan { ch4: 0.05 };
    SweepPlan {
        name: "service_shard_smoke".into(),
        cases: vec![
            CaseSpec::new(
                "corr-air9-a",
                GasSpec::Air9,
                corr_air.clone(),
                air(3e-5, 9000.0),
            ),
            CaseSpec::new("corr-air9-b", GasSpec::Air9, corr_air, air(1e-4, 7000.0)),
            CaseSpec::new(
                "corr-titan-a",
                titan_gas.clone(),
                corr_titan.clone(),
                titan(3e-5, 10000.0),
            ),
            CaseSpec::new(
                "corr-titan-b",
                titan_gas.clone(),
                corr_titan,
                titan(1e-4, 8000.0),
            ),
            CaseSpec::new("vsl-air9", GasSpec::Air9, vsl.clone(), air(1e-4, 7000.0)),
            CaseSpec::new("vsl-titan", titan_gas, vsl, titan(1e-4, 8000.0)),
        ],
    }
}

struct TestDirs {
    root: std::path::PathBuf,
}

impl TestDirs {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("aerothermod-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        Self { root }
    }

    fn path(&self, name: &str) -> String {
        self.root.join(name).to_str().unwrap().to_string()
    }
}

impl Drop for TestDirs {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

fn spawn_daemon(socket: &str, data_dir: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_aerothermod"))
        .arg(format!("--socket={socket}"))
        .arg(format!("--data-dir={data_dir}"))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning aerothermod")
}

fn connect(socket: &str) -> Client {
    Client::connect_with_retry(socket, Duration::from_secs(60)).expect("daemon came up")
}

fn phase_of(st: &Value) -> String {
    st.get("phase")
        .and_then(Value::as_str)
        .unwrap_or("?")
        .to_string()
}

/// Single-process reference fingerprint for the smoke plan.
fn reference_fingerprint(dirs: &TestDirs) -> Vec<(String, String)> {
    let store = dirs.path("direct.jsonl");
    let report = run_sweep(
        &smoke_plan(),
        &SweepOptions {
            workers: 2,
            store_path: Some(store.clone()),
            ..SweepOptions::default()
        },
    )
    .expect("direct sweep runs");
    assert!(report.all_green(), "reference sweep must be green");
    normalized_fingerprint(&load_records(&store).expect("reference store parses"))
}

#[test]
fn killed_shard_daemon_resumes_and_federates_bitwise_identical() {
    let dirs = TestDirs::new("shard-drill");
    let socket = dirs.path("aerothermod.sock");
    let data_dir = dirs.path("data");
    let plan = smoke_plan();
    let reference = reference_fingerprint(&dirs);

    // Shard 0/2 with a halt budget so the store is genuinely partial,
    // then SIGKILL the daemon mid-lifecycle.
    let mut daemon = spawn_daemon(&socket, &data_dir);
    let mut client = connect(&socket);
    let job0 = client
        .submit_shard(&plan, "0/2", Some("cost_balanced"), Some(1), Some(1))
        .expect("shard 0 accepted");
    let st = client.wait(&job0, Duration::from_secs(300)).expect("halt");
    assert_eq!(phase_of(&st), "halted", "halt budget should stop shard 0");
    assert_eq!(
        st.get("shard").and_then(Value::as_str),
        Some("0/2"),
        "status must carry the shard slice"
    );
    let store0 = st.get("store").and_then(Value::as_str).unwrap().to_string();
    let n_partial = load_records(&store0).expect("partial store parses").len();
    daemon.kill().expect("kill daemon");
    daemon.wait().expect("reap daemon");

    // Restart on the same data dir: the sidecar must recover the job as
    // a *shard* job (total = slice length, not the full plan), and
    // resume must finish exactly the missing cases.
    let mut daemon = spawn_daemon(&socket, &data_dir);
    let mut client = connect(&socket);
    let st = client.status(&job0).expect("job recovered from disk");
    assert_eq!(phase_of(&st), "interrupted");
    let slice_len = st.get("total").and_then(Value::as_f64).unwrap() as usize;
    assert!(
        slice_len < plan.cases.len(),
        "recovered total must be the shard slice, got {slice_len}"
    );
    assert!(n_partial < slice_len, "drill needs a partial shard store");
    client.resume(&job0, Some(1)).expect("resume accepted");
    let st = client
        .wait(&job0, Duration::from_secs(600))
        .expect("finish");
    assert_eq!(phase_of(&st), "completed");

    // Shard 1/2 runs uninterrupted on the same daemon.
    let job1 = client
        .submit_shard(&plan, "1/2", Some("cost_balanced"), Some(1), None)
        .expect("shard 1 accepted");
    let st = client
        .wait(&job1, Duration::from_secs(600))
        .expect("finish");
    assert_eq!(phase_of(&st), "completed");

    // Federate over the protocol and gate on the reference fingerprint.
    let v = client
        .federate(&[job0, job1])
        .expect("federation over the protocol");
    let merged_store = v.get("store").and_then(Value::as_str).unwrap().to_string();
    assert_eq!(
        v.get("report").and_then(|r| r.get("complete")),
        Some(&Value::Bool(true)),
        "federation must be complete"
    );
    client.shutdown().expect("clean shutdown");
    daemon.wait().expect("daemon exits");

    assert_eq!(
        normalized_fingerprint(&load_records(&merged_store).expect("merged store parses")),
        reference,
        "kill + resume + federate diverged from the single-process run"
    );
}

#[test]
fn coordinator_fleet_federates_bitwise_identical() {
    let dirs = TestDirs::new("coordinator");
    let plan = smoke_plan();
    let reference = reference_fingerprint(&dirs);

    let mut cfg = CoordinatorConfig::new(env!("CARGO_BIN_EXE_aerothermod"), &dirs.path("fleet"), 2);
    cfg.strategy = ShardStrategy::CostBalanced;
    cfg.timeout = Duration::from_secs(600);
    let done = run_coordinated_sweep(&plan, &cfg).expect("coordinated sweep runs");
    assert!(done.report.complete(), "{}", done.report.summary());
    assert_eq!(done.shards.len(), 2);
    assert_eq!(
        normalized_fingerprint(&load_records(&done.store_path).expect("federated store parses")),
        reference,
        "coordinated fleet diverged from the single-process run"
    );
}
