//! Service-level determinism drill: a sweep submitted through a live
//! `aerothermod` daemon — killed mid-job, restarted, and resumed — must
//! leave a store bitwise identical (order-normalized) to a direct
//! in-process [`run_sweep`] of the same plan. Plus: the resident
//! surrogate table must survive across requests (built once, reused).

use std::process::{Child, Command, Stdio};
use std::time::Duration;

use aerothermo_numerics::json::Value;
use aerothermo_service::Client;
use aerothermo_sweep::{
    load_records, normalized_fingerprint, run_sweep, CaseSpec, FlowSpec, GasSpec, LevelSpec,
    SweepOptions, SweepPlan,
};

/// The CI smoke plan (4 correlation + 2 VSL cases), built in Rust so the
/// drill and the workflow exercise the same numbers.
fn smoke_plan() -> SweepPlan {
    let air = |rho: f64, u: f64| FlowSpec::new(rho, u, 220.0, f64::NAN, 0.5, 1500.0);
    let titan = |rho: f64, u: f64| FlowSpec::new(rho, u, 165.0, f64::NAN, 0.6, 1800.0);
    let corr_air = LevelSpec::Correlation { k_sg: 0.000174 };
    let corr_titan = LevelSpec::Correlation { k_sg: 0.00017 };
    let vsl = LevelSpec::Vsl {
        n_points: 20,
        radiating: false,
    };
    SweepPlan {
        name: "service_drill_smoke".into(),
        cases: vec![
            CaseSpec::new(
                "corr-air9-a",
                GasSpec::Air9,
                corr_air.clone(),
                air(3e-5, 9000.0),
            ),
            CaseSpec::new("corr-air9-b", GasSpec::Air9, corr_air, air(1e-4, 7000.0)),
            CaseSpec::new(
                "corr-titan-a",
                GasSpec::Titan { ch4: 0.05 },
                corr_titan.clone(),
                titan(3e-5, 10000.0),
            ),
            CaseSpec::new(
                "corr-titan-b",
                GasSpec::Titan { ch4: 0.05 },
                corr_titan,
                titan(1e-4, 8000.0),
            ),
            CaseSpec::new("vsl-air9", GasSpec::Air9, vsl.clone(), air(1e-4, 7000.0)),
            CaseSpec::new(
                "vsl-titan",
                GasSpec::Titan { ch4: 0.05 },
                vsl,
                titan(1e-4, 8000.0),
            ),
        ],
    }
}

struct TestDirs {
    root: std::path::PathBuf,
}

impl TestDirs {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("aerothermod-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        Self { root }
    }

    fn path(&self, name: &str) -> String {
        self.root.join(name).to_str().unwrap().to_string()
    }
}

impl Drop for TestDirs {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

/// Spawn the daemon binary this crate just built.
fn spawn_daemon(socket: &str, data_dir: &str, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_aerothermod"))
        .arg(format!("--socket={socket}"))
        .arg(format!("--data-dir={data_dir}"))
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning aerothermod")
}

fn connect(socket: &str) -> Client {
    Client::connect_with_retry(socket, Duration::from_secs(60)).expect("daemon came up")
}

fn phase_of(st: &Value) -> String {
    st.get("phase")
        .and_then(Value::as_str)
        .unwrap_or("?")
        .to_string()
}

#[test]
fn killed_daemon_resumes_to_bitwise_identical_store() {
    let dirs = TestDirs::new("drill");
    let socket = dirs.path("aerothermod.sock");
    let data_dir = dirs.path("data");
    let plan = smoke_plan();

    // Phase 1: submit with a halt budget so the daemon stops mid-job at
    // a deterministic-ish point (2-4 of 6 cases recorded, never all 6),
    // then SIGKILL it — the job is left outstanding on disk.
    let mut daemon = spawn_daemon(&socket, &data_dir, &[]);
    let mut client = connect(&socket);
    let job = client
        .submit(&plan, Some(2), Some(2))
        .expect("submit accepted");
    assert_eq!(job, "job-0001");
    let st = client.wait(&job, Duration::from_secs(300)).expect("halt");
    assert_eq!(
        phase_of(&st),
        "halted",
        "halt budget should stop the job early"
    );
    let store_path = st.get("store").and_then(Value::as_str).unwrap().to_string();
    let partial = load_records(&store_path).expect("partial store parses");
    assert!(
        !partial.is_empty() && partial.len() < plan.cases.len(),
        "drill needs a genuinely partial store, got {} of {} records",
        partial.len(),
        plan.cases.len()
    );
    daemon.kill().expect("kill daemon");
    daemon.wait().expect("reap daemon");

    // Phase 2: restart on the same data dir (and same socket path — the
    // stale socket file must be detected and replaced). The startup scan
    // must classify the job as interrupted, and resume must finish it.
    let mut daemon = spawn_daemon(&socket, &data_dir, &[]);
    let mut client = connect(&socket);
    let st = client.status(&job).expect("job recovered from disk");
    assert_eq!(phase_of(&st), "interrupted");
    client.resume(&job, Some(2)).expect("resume accepted");
    let st = client.wait(&job, Duration::from_secs(600)).expect("finish");
    assert_eq!(phase_of(&st), "completed");
    assert_eq!(st.get("done").and_then(Value::as_f64), Some(6.0));

    // The results endpoint serves exactly the store records.
    let res = client.results(&job).expect("results served");
    let records = res.get("records").and_then(Value::as_array).unwrap();
    assert_eq!(records.len(), 6, "one served record per case");

    client.shutdown().expect("clean shutdown");
    daemon.wait().expect("daemon exits after shutdown");

    // Phase 3: the same plan run directly in this process, no daemon.
    let direct_store = dirs.path("direct.store.jsonl");
    let report = run_sweep(
        &plan,
        &SweepOptions {
            workers: 2,
            store_path: Some(direct_store.clone()),
            ..SweepOptions::default()
        },
    )
    .expect("direct sweep runs");
    assert!(report.all_green(), "direct sweep must be green");

    // The acceptance gate: order-normalized, the daemon-run store (kill +
    // resume included) is bitwise identical to the direct store.
    let service_records = load_records(&store_path).expect("service store parses");
    let direct_records = load_records(&direct_store).expect("direct store parses");
    assert_eq!(service_records.len(), 6);
    assert_eq!(
        normalized_fingerprint(&service_records),
        normalized_fingerprint(&direct_records),
        "service store diverged from direct run_sweep"
    );
}

#[test]
fn resident_surrogate_serves_repeat_batches_without_rebuilding() {
    let dirs = TestDirs::new("resident");
    let socket = dirs.path("aerothermod.sock");
    let data_dir = dirs.path("data");

    // Small corridor + coarse grid keeps the lazy build cheap.
    let mut daemon = spawn_daemon(
        &socket,
        &data_dir,
        &[
            "--corridor=50000,60000,5000,7000",
            "--grid=5,5",
            "--tolerance=0.1",
            "--nose-radius=0.5",
        ],
    );
    let mut client = connect(&socket);

    let counters_of = |client: &mut Client| -> std::collections::BTreeMap<String, f64> {
        let v = client.metrics("json").expect("metrics served");
        let m = v.get("metrics").expect("metrics member");
        m.get("counters")
            .and_then(Value::as_object)
            .map(|obj| {
                obj.iter()
                    .filter_map(|(k, x)| x.as_f64().map(|n| (k.clone(), n)))
                    .collect()
            })
            .unwrap_or_default()
    };

    // 3 in-corridor points + 1 below the corridor floor (exact fallback).
    let hs = [52_000.0, 55_000.0, 58_000.0, 30_000.0];
    let vs = [5_500.0, 6_000.0, 6_500.0, 6_000.0];
    let first = client.query_batch(&hs, &vs).expect("first batch");
    assert_eq!(
        first.get("exact_fallbacks").and_then(Value::as_f64),
        Some(1.0)
    );
    let items = first.get("results").and_then(Value::as_array).unwrap();
    assert_eq!(items.len(), 4);
    for q in items {
        let qc = q.get("q_conv").and_then(Value::as_f64).unwrap();
        assert!(
            qc.is_finite() && qc > 0.0,
            "q_conv must be positive, got {qc}"
        );
    }
    let after_first = counters_of(&mut client);
    assert_eq!(
        after_first.get("surrogate_builds"),
        Some(&1.0),
        "first batch triggers exactly one lazy build: {after_first:?}"
    );
    let q1 = after_first.get("surrogate_queries").copied().unwrap_or(0.0);
    assert!(
        q1 >= 3.0,
        "3 in-corridor queries must hit the table, got {q1}"
    );

    // Second batch on a *new connection*: the table must be resident
    // (no second build), and the answers bitwise equal to the first.
    let mut client2 = connect(&socket);
    let second = client2.query_batch(&hs, &vs).expect("second batch");
    let bits = |v: &Value| -> Vec<(u64, u64)> {
        v.get("results")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|q| {
                (
                    q.get("q_conv").and_then(Value::as_f64).unwrap().to_bits(),
                    q.get("t_stag").and_then(Value::as_f64).unwrap().to_bits(),
                )
            })
            .collect()
    };
    assert_eq!(
        bits(&first),
        bits(&second),
        "resident answers must be bitwise stable"
    );
    let after_second = counters_of(&mut client2);
    assert_eq!(
        after_second.get("surrogate_builds"),
        Some(&1.0),
        "second batch must reuse the resident table: {after_second:?}"
    );
    let q2 = after_second
        .get("surrogate_queries")
        .copied()
        .unwrap_or(0.0);
    assert!(
        q2 >= q1 + 3.0,
        "repeat batch must hit the table again ({q1} -> {q2})"
    );
    assert_eq!(
        after_second.get("surrogate_exact_fallbacks"),
        Some(&2.0),
        "one out-of-corridor point per batch: {after_second:?}"
    );

    client2.shutdown().expect("clean shutdown");
    daemon.wait().expect("daemon exits");
}
