//! Structured body-fitted grid generation for blunt-body hypersonic flows.
//!
//! The finite-volume solvers in `aerothermo-solvers` discretize on
//! single-block structured grids wrapped around axisymmetric blunt bodies
//! (hemisphere, sphere-cone, hyperboloid — the Orbiter-equivalent shapes of
//! the paper's Figs. 4–6 and 9):
//!
//! * [`bodies`] — parametric body shapes with normals and curvature,
//! * [`stretch`] — 1-D point-distribution (clustering) functions,
//! * [`structured`] — grid assembly: wall-normal algebraic grids,
//!   rectangular test grids,
//! * [`metrics`] — finite-volume metrics: face normals, volumes, centroids,
//!   with axisymmetric weighting,
//! * [`quality`] — aspect/skew/volume-jump diagnostics,
//! * [`adapt`] — shock-adaptive regridding (coarse solve → shock locus →
//!   fitted outer boundary).
#![warn(missing_docs)]
// Indexed loops over parallel arrays are the clearest idiom for the
// numerical kernels here; spelled-out spectroscopic constants keep their
// literature precision.
#![allow(
    clippy::needless_range_loop,
    clippy::excessive_precision,
    clippy::type_complexity
)]

pub mod adapt;
pub mod bodies;
pub mod metrics;
pub mod quality;
pub mod stretch;
pub mod structured;

pub use bodies::{Body, Hemisphere, Hyperboloid, SphereCone};
pub use metrics::Metrics;
pub use structured::{Geometry, StructuredGrid};
