//! 1-D point distributions (clustering) for grid generation.
//!
//! Hypersonic shock layers need wall clustering (boundary-layer resolution)
//! and sometimes two-sided clustering (wall + shock). All functions return
//! `n` normalized coordinates in `[0, 1]`, first 0, last 1, strictly
//! increasing.

/// Uniform distribution.
#[must_use]
pub fn uniform(n: usize) -> Vec<f64> {
    assert!(n >= 2);
    (0..n).map(|i| i as f64 / (n - 1) as f64).collect()
}

/// One-sided tanh clustering toward `ξ = 0` with strength `beta > 0`
/// (larger = tighter wall spacing).
#[must_use]
pub fn tanh_one_sided(n: usize, beta: f64) -> Vec<f64> {
    assert!(n >= 2 && beta > 0.0);
    (0..n)
        .map(|i| {
            let xi = i as f64 / (n - 1) as f64;
            1.0 + (beta * (xi - 1.0)).tanh() / beta.tanh()
        })
        .collect()
}

/// Geometric progression toward `ξ = 0` with growth `ratio > 1`; the first
/// interval is the smallest.
#[must_use]
pub fn geometric(n: usize, ratio: f64) -> Vec<f64> {
    assert!(n >= 2 && ratio > 0.0);
    let m = n - 1;
    let total: f64 = if (ratio - 1.0).abs() < 1e-12 {
        m as f64
    } else {
        (ratio.powi(m as i32) - 1.0) / (ratio - 1.0)
    };
    let mut xs = Vec::with_capacity(n);
    let mut acc = 0.0;
    xs.push(0.0);
    for k in 0..m {
        acc += ratio.powi(k as i32);
        xs.push(acc / total);
    }
    let last = xs.len() - 1;
    xs[last] = 1.0;
    xs
}

/// Two-sided tanh clustering (both ends refined), strength `beta`.
#[must_use]
pub fn tanh_two_sided(n: usize, beta: f64) -> Vec<f64> {
    assert!(n >= 2 && beta > 0.0);
    (0..n)
        .map(|i| {
            let xi = i as f64 / (n - 1) as f64;
            0.5 * (1.0 + (beta * (2.0 * xi - 1.0)).tanh() / beta.tanh())
        })
        .collect()
}

#[cfg(test)]
fn check(xs: &[f64]) -> bool {
    xs.first() == Some(&0.0)
        && (xs.last().copied().unwrap_or(0.0) - 1.0).abs() < 1e-12
        && xs.windows(2).all(|w| w[1] > w[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_distributions_valid() {
        assert!(check(&uniform(11)));
        assert!(check(&tanh_one_sided(11, 3.0)));
        assert!(check(&geometric(11, 1.2)));
        assert!(check(&tanh_two_sided(11, 2.5)));
    }

    #[test]
    fn tanh_clusters_at_wall() {
        let xs = tanh_one_sided(21, 3.0);
        let first = xs[1] - xs[0];
        let last = xs[20] - xs[19];
        assert!(first < last / 3.0, "first={first} last={last}");
    }

    #[test]
    fn geometric_ratio_respected() {
        let xs = geometric(11, 1.5);
        let d0 = xs[1] - xs[0];
        let d1 = xs[2] - xs[1];
        assert!((d1 / d0 - 1.5).abs() < 1e-9);
    }

    #[test]
    fn geometric_unit_ratio_is_uniform() {
        let xs = geometric(6, 1.0);
        let u = uniform(6);
        for (a, b) in xs.iter().zip(&u) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn two_sided_symmetric() {
        let xs = tanh_two_sided(21, 2.0);
        for i in 0..21 {
            assert!((xs[i] + xs[20 - i] - 1.0).abs() < 1e-12);
        }
    }
}
