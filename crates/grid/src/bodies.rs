//! Parametric axisymmetric body shapes.
//!
//! Bodies are parameterized by arc length `s ∈ [0, s_max]` measured from the
//! stagnation point, in the meridian plane `(x, r)` with the freestream
//! along +x and the nose at the origin. `point(s)` returns the surface
//! point; tangents/normals come from analytic derivatives where available.

/// An axisymmetric body in the meridian plane.
pub trait Body: Send + Sync {
    /// Total arc length of the generator curve \[m\].
    fn arc_length(&self) -> f64;

    /// Surface point `(x, r)` at arc length `s` from the stagnation point.
    fn point(&self, s: f64) -> (f64, f64);

    /// Unit tangent `(tx, tr)` in the direction of increasing `s`.
    fn tangent(&self, s: f64) -> (f64, f64) {
        let h = 1e-6 * self.arc_length().max(1e-6);
        let s0 = (s - h).max(0.0);
        let s1 = (s + h).min(self.arc_length());
        let (x0, r0) = self.point(s0);
        let (x1, r1) = self.point(s1);
        let d = ((x1 - x0).powi(2) + (r1 - r0).powi(2)).sqrt().max(1e-300);
        ((x1 - x0) / d, (r1 - r0) / d)
    }

    /// Outward unit normal (pointing into the flow, i.e. upstream of the
    /// surface): the tangent rotated +90°.
    fn normal(&self, s: f64) -> (f64, f64) {
        let (tx, tr) = self.tangent(s);
        (-tr, tx)
    }

    /// Nose radius of curvature \[m\].
    fn nose_radius(&self) -> f64;

    /// Local body angle θ (between surface tangent and the x-axis) \[rad\].
    fn body_angle(&self, s: f64) -> f64 {
        let (tx, tr) = self.tangent(s);
        tr.atan2(tx)
    }
}

/// Hemisphere (optionally extended as a hemisphere-cylinder) of nose radius
/// `rn`, spanning polar angle `0..=theta_max` from the stagnation point.
#[derive(Debug, Clone, Copy)]
pub struct Hemisphere {
    /// Nose radius \[m\].
    pub rn: f64,
    /// Maximum polar angle \[rad\] (π/2 for a full hemisphere).
    pub theta_max: f64,
}

impl Hemisphere {
    /// Full hemisphere of radius `rn`.
    #[must_use]
    pub fn new(rn: f64) -> Self {
        Self {
            rn,
            theta_max: std::f64::consts::FRAC_PI_2,
        }
    }
}

impl Body for Hemisphere {
    fn arc_length(&self) -> f64 {
        self.rn * self.theta_max
    }

    fn point(&self, s: f64) -> (f64, f64) {
        let theta = (s / self.rn).clamp(0.0, self.theta_max);
        (self.rn * (1.0 - theta.cos()), self.rn * theta.sin())
    }

    fn tangent(&self, s: f64) -> (f64, f64) {
        let theta = (s / self.rn).clamp(0.0, self.theta_max);
        (theta.sin(), theta.cos())
    }

    fn nose_radius(&self) -> f64 {
        self.rn
    }
}

/// Sphere-cone: spherical nose of radius `rn` blending tangentially into a
/// cone of half-angle `half_angle`, truncated at axial length `length`.
#[derive(Debug, Clone, Copy)]
pub struct SphereCone {
    /// Nose radius \[m\].
    pub rn: f64,
    /// Cone half-angle \[rad\].
    pub half_angle: f64,
    /// Total axial length from the nose \[m\].
    pub length: f64,
}

impl SphereCone {
    /// Polar angle at the sphere-cone tangency.
    #[must_use]
    pub fn tangency_angle(&self) -> f64 {
        std::f64::consts::FRAC_PI_2 - self.half_angle
    }

    /// Arc length along the spherical cap to tangency.
    #[must_use]
    fn s_tangent(&self) -> f64 {
        self.rn * self.tangency_angle()
    }

    /// Tangency point.
    fn p_tangent(&self) -> (f64, f64) {
        let th = self.tangency_angle();
        (self.rn * (1.0 - th.cos()), self.rn * th.sin())
    }
}

impl Body for SphereCone {
    fn arc_length(&self) -> f64 {
        let (xt, _) = self.p_tangent();
        self.s_tangent() + (self.length - xt).max(0.0) / self.half_angle.cos()
    }

    fn point(&self, s: f64) -> (f64, f64) {
        let st = self.s_tangent();
        if s <= st {
            let theta = s / self.rn;
            (self.rn * (1.0 - theta.cos()), self.rn * theta.sin())
        } else {
            let (xt, rt) = self.p_tangent();
            let ds = s - st;
            (
                xt + ds * self.half_angle.cos(),
                rt + ds * self.half_angle.sin(),
            )
        }
    }

    fn tangent(&self, s: f64) -> (f64, f64) {
        let st = self.s_tangent();
        if s <= st {
            let theta = s / self.rn;
            (theta.sin(), theta.cos())
        } else {
            (self.half_angle.cos(), self.half_angle.sin())
        }
    }

    fn nose_radius(&self) -> f64 {
        self.rn
    }
}

/// Hyperboloid of nose radius `rn` and asymptotic half-angle `asymptote`,
/// truncated at axial length `length`. The classic equivalent body for the
/// Shuttle Orbiter windward pitch plane at entry attitude (the same
/// reduction used by the codes surveyed in the paper).
#[derive(Debug, Clone)]
pub struct Hyperboloid {
    /// Nose radius \[m\].
    pub rn: f64,
    /// Asymptotic half-angle \[rad\].
    pub asymptote: f64,
    /// Axial length \[m\].
    pub length: f64,
    /// Precomputed arc-length ↔ x lookup (monotone).
    s_of_x: Vec<(f64, f64)>,
}

impl Hyperboloid {
    /// Build, precomputing the arc-length parameterization.
    ///
    /// # Panics
    /// Panics for non-positive dimensions or angle outside (0, π/2).
    #[must_use]
    pub fn new(rn: f64, asymptote: f64, length: f64) -> Self {
        assert!(rn > 0.0 && length > 0.0);
        assert!(asymptote > 0.0 && asymptote < std::f64::consts::FRAC_PI_2);
        // r(x) = tanθ·√((x+a)² − a²), a = rn/tan²θ gives nose curvature rn.
        let tan2 = asymptote.tan() * asymptote.tan();
        let a = rn / tan2;
        let n = 4000;
        let mut s_of_x = Vec::with_capacity(n + 1);
        let mut s = 0.0;
        let mut prev = (0.0, 0.0);
        s_of_x.push((0.0, 0.0));
        for k in 1..=n {
            // Cluster x samples near the nose where curvature is high.
            let t = k as f64 / n as f64;
            let x = length * t * t;
            let r = asymptote.tan() * ((x + a) * (x + a) - a * a).max(0.0).sqrt();
            s += ((x - prev.0).powi(2) + (r - prev.1).powi(2)).sqrt();
            s_of_x.push((s, x));
            prev = (x, r);
        }
        Self {
            rn,
            asymptote,
            length,
            s_of_x,
        }
    }

    fn r_of_x(&self, x: f64) -> f64 {
        let tan2 = self.asymptote.tan() * self.asymptote.tan();
        let a = self.rn / tan2;
        self.asymptote.tan() * ((x + a) * (x + a) - a * a).max(0.0).sqrt()
    }

    fn x_of_s(&self, s: f64) -> f64 {
        let s = s.clamp(0.0, self.arc_length());
        // Binary search the monotone (s, x) table.
        let idx = self
            .s_of_x
            .partition_point(|(si, _)| *si < s)
            .clamp(1, self.s_of_x.len() - 1);
        let (s0, x0) = self.s_of_x[idx - 1];
        let (s1, x1) = self.s_of_x[idx];
        if s1 > s0 {
            x0 + (x1 - x0) * (s - s0) / (s1 - s0)
        } else {
            x0
        }
    }
}

impl Body for Hyperboloid {
    fn arc_length(&self) -> f64 {
        self.s_of_x.last().map_or(0.0, |(s, _)| *s)
    }

    fn point(&self, s: f64) -> (f64, f64) {
        let x = self.x_of_s(s);
        (x, self.r_of_x(x))
    }

    fn nose_radius(&self) -> f64 {
        self.rn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hemisphere_geometry() {
        let b = Hemisphere::new(0.5);
        let (x0, r0) = b.point(0.0);
        assert!(x0.abs() < 1e-12 && r0.abs() < 1e-12);
        // Quarter arc: θ = π/4.
        let s = 0.5 * std::f64::consts::FRAC_PI_4;
        let (x, r) = b.point(s);
        assert!((x - 0.5 * (1.0 - 0.5f64.sqrt())).abs() < 1e-12);
        assert!((r - 0.5 * 0.5f64.sqrt()).abs() < 1e-12);
        // Shoulder: θ = π/2 → (rn, rn).
        let (xs, rs) = b.point(b.arc_length());
        assert!((xs - 0.5).abs() < 1e-12 && (rs - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hemisphere_normal_points_upstream_at_nose() {
        let b = Hemisphere::new(1.0);
        let (nx, nr) = b.normal(0.0);
        assert!((nx + 1.0).abs() < 1e-9, "nx = {nx}");
        assert!(nr.abs() < 1e-9);
    }

    #[test]
    fn sphere_cone_tangency_is_smooth() {
        let b = SphereCone {
            rn: 0.3,
            half_angle: 20f64.to_radians(),
            length: 2.0,
        };
        let st = b.rn * b.tangency_angle();
        let t_before = b.tangent(st - 1e-9);
        let t_after = b.tangent(st + 1e-9);
        assert!((t_before.0 - t_after.0).abs() < 1e-6);
        assert!((t_before.1 - t_after.1).abs() < 1e-6);
        // Far downstream the slope equals the cone angle.
        let angle = b.body_angle(b.arc_length() * 0.99);
        assert!((angle - 20f64.to_radians()).abs() < 1e-9);
    }

    #[test]
    fn sphere_cone_reaches_length() {
        let b = SphereCone {
            rn: 0.3,
            half_angle: 20f64.to_radians(),
            length: 2.0,
        };
        let (x_end, _) = b.point(b.arc_length());
        assert!((x_end - 2.0).abs() < 1e-6, "x_end = {x_end}");
    }

    #[test]
    fn hyperboloid_nose_curvature() {
        let b = Hyperboloid::new(1.2, 40f64.to_radians(), 20.0);
        // Near the nose, r ≈ √(2·rn·x).
        let (x, r) = b.point(0.01);
        let r_expect = (2.0 * 1.2 * x).sqrt();
        assert!(
            (r - r_expect).abs() / r_expect < 0.01,
            "r = {r} vs {r_expect}"
        );
    }

    #[test]
    fn hyperboloid_approaches_asymptote() {
        let b = Hyperboloid::new(1.2, 40f64.to_radians(), 50.0);
        let angle = b.body_angle(b.arc_length() * 0.999);
        assert!(
            (angle - 40f64.to_radians()).abs() < 0.05,
            "angle = {} deg",
            angle.to_degrees()
        );
    }

    #[test]
    fn arc_length_parameterization_consistent() {
        // Distance between nearby points ≈ Δs for all bodies.
        let bodies: Vec<Box<dyn Body>> = vec![
            Box::new(Hemisphere::new(0.7)),
            Box::new(SphereCone {
                rn: 0.4,
                half_angle: 0.3,
                length: 3.0,
            }),
            Box::new(Hyperboloid::new(1.0, 0.7, 10.0)),
        ];
        for b in &bodies {
            let smax = b.arc_length();
            for k in 1..20 {
                let s = smax * k as f64 / 21.0;
                let ds = smax * 1e-5;
                let (x0, r0) = b.point(s);
                let (x1, r1) = b.point(s + ds);
                let d = ((x1 - x0).powi(2) + (r1 - r0).powi(2)).sqrt();
                assert!((d - ds).abs() < 0.05 * ds, "param distortion {d} vs {ds}");
            }
        }
    }

    #[test]
    fn normals_are_unit_and_outward() {
        let b = Hyperboloid::new(1.0, 0.6, 10.0);
        for k in 0..10 {
            let s = b.arc_length() * k as f64 / 10.0;
            let (nx, nr) = b.normal(s);
            assert!((nx * nx + nr * nr - 1.0).abs() < 1e-6);
            // Outward normal on the windward generator has nx ≤ 0 component
            // near the nose turning toward positive r downstream.
            assert!(nr >= -1e-9, "nr = {nr} at s = {s}");
        }
    }
}
