//! Grid-quality diagnostics.
//!
//! The paper's closing challenges include grid generation "optimized for
//! supercomputer processing"; the first requirement is knowing when a grid
//! is bad. These diagnostics flag the classic structured-grid pathologies:
//! extreme aspect ratio, skewness, and volume jumps.

use crate::metrics::Metrics;
use crate::structured::StructuredGrid;

/// Per-grid quality summary.
#[derive(Debug, Clone, Copy)]
pub struct QualityReport {
    /// Maximum cell aspect ratio (i-extent / j-extent or inverse).
    pub max_aspect: f64,
    /// Mean aspect ratio.
    pub mean_aspect: f64,
    /// Maximum skewness: 1 − |cos| of the angle between the i-face normal
    /// and the line between adjacent cell centers (0 = orthogonal).
    pub max_skew: f64,
    /// Maximum adjacent-cell volume ratio (≥ 1).
    pub max_volume_jump: f64,
    /// Smallest cell volume.
    pub min_volume: f64,
}

impl QualityReport {
    /// A loose acceptability gate for the solvers in this workspace.
    #[must_use]
    pub fn acceptable(&self) -> bool {
        self.max_skew < 0.5 && self.min_volume > 0.0 && self.max_volume_jump < 1e4
    }
}

/// Compute the quality report for a grid.
///
/// # Panics
/// Panics for grids smaller than 2×2 cells.
#[must_use]
pub fn assess(grid: &StructuredGrid) -> QualityReport {
    let m = Metrics::new(grid);
    let nci = grid.nci();
    let ncj = grid.ncj();
    assert!(nci >= 2 && ncj >= 2, "quality needs at least 2x2 cells");

    let mut max_aspect = 0.0_f64;
    let mut sum_aspect = 0.0;
    let mut max_skew = 0.0_f64;
    let mut max_volume_jump = 1.0_f64;
    let mut min_volume = f64::INFINITY;

    for i in 0..nci {
        for j in 0..ncj {
            // Cell extents from the corner nodes.
            let di = {
                let dx = grid.x[(i + 1, j)] - grid.x[(i, j)];
                let dr = grid.r[(i + 1, j)] - grid.r[(i, j)];
                (dx * dx + dr * dr).sqrt()
            };
            let dj = {
                let dx = grid.x[(i, j + 1)] - grid.x[(i, j)];
                let dr = grid.r[(i, j + 1)] - grid.r[(i, j)];
                (dx * dx + dr * dr).sqrt()
            };
            let aspect = (di / dj).max(dj / di);
            max_aspect = max_aspect.max(aspect);
            sum_aspect += aspect;
            min_volume = min_volume.min(m.volume[(i, j)]);

            // Skewness across the interior i-face to the right.
            if i + 1 < nci {
                let sx = m.si_x[(i + 1, j)];
                let sr = m.si_r[(i + 1, j)];
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let cx = m.xc[(i + 1, j)] - m.xc[(i, j)];
                let cr = m.rc[(i + 1, j)] - m.rc[(i, j)];
                let clen = (cx * cx + cr * cr).sqrt().max(1e-300);
                let cosang = ((sx * cx + sr * cr) / (area * clen)).abs();
                max_skew = max_skew.max(1.0 - cosang);
                let vjump = (m.volume[(i + 1, j)] / m.volume[(i, j)])
                    .max(m.volume[(i, j)] / m.volume[(i + 1, j)]);
                max_volume_jump = max_volume_jump.max(vjump);
            }
            if j + 1 < ncj {
                let vjump = (m.volume[(i, j + 1)] / m.volume[(i, j)])
                    .max(m.volume[(i, j)] / m.volume[(i, j + 1)]);
                max_volume_jump = max_volume_jump.max(vjump);
            }
        }
    }

    QualityReport {
        max_aspect,
        mean_aspect: sum_aspect / (nci * ncj) as f64,
        max_skew,
        max_volume_jump,
        min_volume,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bodies::Hemisphere;
    use crate::stretch;
    use crate::structured::Geometry;

    #[test]
    fn uniform_rectangle_is_pristine() {
        let g = StructuredGrid::rectangle(11, 11, 1.0, 1.0, Geometry::Planar);
        let q = assess(&g);
        assert!((q.max_aspect - 1.0).abs() < 1e-12);
        assert!(q.max_skew < 1e-12);
        assert!((q.max_volume_jump - 1.0).abs() < 1e-12);
        assert!(q.acceptable());
    }

    #[test]
    fn stretched_rectangle_reports_aspect() {
        let g = StructuredGrid::rectangle(11, 3, 1.0, 0.01, Geometry::Planar);
        let q = assess(&g);
        assert!(q.max_aspect > 15.0, "aspect = {}", q.max_aspect);
    }

    #[test]
    fn blunt_body_grid_acceptable() {
        let body = Hemisphere::new(0.5);
        let dist = stretch::tanh_one_sided(25, 3.0);
        let g = StructuredGrid::blunt_body(&body, 21, 25, &|sb| 0.15 + 0.05 * sb, &dist);
        let q = assess(&g);
        assert!(q.acceptable(), "{q:?}");
        assert!(q.min_volume > 0.0);
        // Wall clustering means high aspect near the wall — expected.
        assert!(q.max_aspect > 3.0);
    }
}
