//! Finite-volume metrics for structured grids.
//!
//! For every cell: volume and centroid; for every face: the area-weighted
//! normal. Normals follow the index convention:
//!
//! * I-face `(i, j)` separates cells `(i−1, j)` and `(i, j)`; its normal
//!   points toward increasing `i`.
//! * J-face `(i, j)` separates cells `(i, j−1)` and `(i, j)`; its normal
//!   points toward increasing `j`.
//!
//! In axisymmetric mode all areas and volumes are per radian of azimuth:
//! face area = edge length × face-midpoint radius, volume = polygon area ×
//! centroid radius. The solver adds the geometric (pressure) source term.

use crate::structured::{Geometry, StructuredGrid};
use aerothermo_numerics::Field2;

/// Precomputed finite-volume metrics.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// I-face normal x-component times area; shape `(ni, ncj)`.
    pub si_x: Field2<f64>,
    /// I-face normal r-component times area; shape `(ni, ncj)`.
    pub si_r: Field2<f64>,
    /// J-face normal x-component times area; shape `(nci, nj)`.
    pub sj_x: Field2<f64>,
    /// J-face normal r-component times area; shape `(nci, nj)`.
    pub sj_r: Field2<f64>,
    /// Cell volumes (per radian when axisymmetric); shape `(nci, ncj)`.
    pub volume: Field2<f64>,
    /// Cell centroid x; shape `(nci, ncj)`.
    pub xc: Field2<f64>,
    /// Cell centroid r; shape `(nci, ncj)`.
    pub rc: Field2<f64>,
    /// Cell meridian-plane area (used for axisymmetric source terms);
    /// shape `(nci, ncj)`.
    pub plane_area: Field2<f64>,
}

fn quad_area_centroid(p: [(f64, f64); 4]) -> (f64, f64, f64) {
    // Shoelace over the quad (counterclockwise order expected); returns
    // (area, cx, cy).
    let mut a2 = 0.0;
    let mut cx = 0.0;
    let mut cy = 0.0;
    for k in 0..4 {
        let (x0, y0) = p[k];
        let (x1, y1) = p[(k + 1) % 4];
        let w = x0 * y1 - x1 * y0;
        a2 += w;
        cx += (x0 + x1) * w;
        cy += (y0 + y1) * w;
    }
    let area = 0.5 * a2;
    if area.abs() < 1e-300 {
        let mx = p.iter().map(|q| q.0).sum::<f64>() / 4.0;
        let my = p.iter().map(|q| q.1).sum::<f64>() / 4.0;
        return (0.0, mx, my);
    }
    (area, cx / (6.0 * area), cy / (6.0 * area))
}

impl Metrics {
    /// Compute metrics for a grid.
    ///
    /// # Panics
    /// Panics if any cell has non-positive volume (tangled grid).
    #[must_use]
    pub fn new(grid: &StructuredGrid) -> Self {
        let ni = grid.ni();
        let nj = grid.nj();
        let nci = ni - 1;
        let ncj = nj - 1;
        let axi = grid.geometry == Geometry::Axisymmetric;

        let mut si_x = Field2::zeros(ni, ncj);
        let mut si_r = Field2::zeros(ni, ncj);
        for i in 0..ni {
            for j in 0..ncj {
                // Edge from node (i, j) to (i, j+1); normal (+i) = (dr, −dx).
                let dx = grid.x[(i, j + 1)] - grid.x[(i, j)];
                let dr = grid.r[(i, j + 1)] - grid.r[(i, j)];
                let w = if axi {
                    0.5 * (grid.r[(i, j + 1)] + grid.r[(i, j)])
                } else {
                    1.0
                };
                si_x[(i, j)] = dr * w;
                si_r[(i, j)] = -dx * w;
            }
        }

        let mut sj_x = Field2::zeros(nci, nj);
        let mut sj_r = Field2::zeros(nci, nj);
        for i in 0..nci {
            for j in 0..nj {
                // Edge from node (i, j) to (i+1, j); normal (+j) = (−dr, dx).
                let dx = grid.x[(i + 1, j)] - grid.x[(i, j)];
                let dr = grid.r[(i + 1, j)] - grid.r[(i, j)];
                let w = if axi {
                    0.5 * (grid.r[(i + 1, j)] + grid.r[(i, j)])
                } else {
                    1.0
                };
                sj_x[(i, j)] = -dr * w;
                sj_r[(i, j)] = dx * w;
            }
        }

        let mut volume = Field2::zeros(nci, ncj);
        let mut xc = Field2::zeros(nci, ncj);
        let mut rc = Field2::zeros(nci, ncj);
        let mut plane_area = Field2::zeros(nci, ncj);
        for i in 0..nci {
            for j in 0..ncj {
                // Counterclockwise in (x, r) for i→+x, j→+r grids.
                let p = [
                    (grid.x[(i, j)], grid.r[(i, j)]),
                    (grid.x[(i + 1, j)], grid.r[(i + 1, j)]),
                    (grid.x[(i + 1, j + 1)], grid.r[(i + 1, j + 1)]),
                    (grid.x[(i, j + 1)], grid.r[(i, j + 1)]),
                ];
                let (area, cx, cy) = quad_area_centroid(p);
                let area = area.abs();
                assert!(area > 0.0, "degenerate cell ({i},{j})");
                plane_area[(i, j)] = area;
                xc[(i, j)] = cx;
                rc[(i, j)] = cy;
                volume[(i, j)] = if axi { area * cy.max(1e-12) } else { area };
            }
        }

        Self {
            si_x,
            si_r,
            sj_x,
            sj_r,
            volume,
            xc,
            rc,
            plane_area,
        }
    }

    /// Geometric-conservation check: the face normals of cell `(i, j)` must
    /// sum to ~0 in planar geometry (in axisymmetric geometry the imbalance
    /// in r equals the meridian-plane area, absorbed by the pressure source).
    #[must_use]
    pub fn gcl_residual(&self, i: usize, j: usize) -> (f64, f64) {
        let sx =
            self.si_x[(i + 1, j)] - self.si_x[(i, j)] + self.sj_x[(i, j + 1)] - self.sj_x[(i, j)];
        let sr =
            self.si_r[(i + 1, j)] - self.si_r[(i, j)] + self.sj_r[(i, j + 1)] - self.sj_r[(i, j)];
        (sx, sr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bodies::Hemisphere;
    use crate::stretch;

    #[test]
    fn planar_rectangle_metrics() {
        let g = StructuredGrid::rectangle(3, 3, 2.0, 1.0, Geometry::Planar);
        let m = Metrics::new(&g);
        // Each cell is 1.0 × 0.5 → volume 0.5.
        assert!((m.volume[(0, 0)] - 0.5).abs() < 1e-12);
        // I-face area = edge length 0.5, pointing +x.
        assert!((m.si_x[(1, 0)] - 0.5).abs() < 1e-12);
        assert!(m.si_r[(1, 0)].abs() < 1e-12);
        // J-face area = 1.0 pointing +y.
        assert!((m.sj_r[(0, 1)] - 1.0).abs() < 1e-12);
        assert!(m.sj_x[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn planar_gcl_closes() {
        let body = Hemisphere::new(1.0);
        let dist = stretch::tanh_one_sided(10, 2.0);
        let mut g = StructuredGrid::blunt_body(&body, 12, 10, &|_| 0.3, &dist);
        g.geometry = Geometry::Planar;
        let m = Metrics::new(&g);
        for i in 0..g.nci() {
            for j in 0..g.ncj() {
                let (sx, sr) = m.gcl_residual(i, j);
                assert!(sx.abs() < 1e-12 && sr.abs() < 1e-12, "GCL at ({i},{j})");
            }
        }
    }

    #[test]
    fn axisymmetric_gcl_r_imbalance_is_plane_area() {
        // In axisymmetric metrics, Σ S_r = plane area of the cell (this is
        // the term balanced by the p/r source in the solver).
        let g = StructuredGrid::rectangle(4, 4, 1.0, 1.0, Geometry::Axisymmetric);
        let m = Metrics::new(&g);
        for i in 0..3 {
            for j in 0..3 {
                let (sx, sr) = m.gcl_residual(i, j);
                assert!(sx.abs() < 1e-12);
                assert!((sr - m.plane_area[(i, j)]).abs() < 1e-12, "({i},{j}): {sr}");
            }
        }
    }

    #[test]
    fn axisymmetric_cylinder_volume() {
        // Unit cylinder r ∈ [0,1], x ∈ [0,1]: total volume per radian = 1/2.
        let g = StructuredGrid::rectangle(5, 5, 1.0, 1.0, Geometry::Axisymmetric);
        let m = Metrics::new(&g);
        let v: f64 = m.volume.as_slice().iter().sum();
        assert!((v - 0.5).abs() < 1e-9, "V = {v}");
    }

    #[test]
    fn volumes_positive_on_blunt_body_grid() {
        let body = Hemisphere::new(0.5);
        let dist = stretch::tanh_one_sided(16, 3.0);
        let g = StructuredGrid::blunt_body(&body, 25, 16, &|sb| 0.1 + 0.05 * sb, &dist);
        let m = Metrics::new(&g);
        for v in m.volume.as_slice() {
            assert!(*v > 0.0);
        }
    }
}
