//! Solution-adaptive blunt-body regridding.
//!
//! The standard adaptation loop for captured-bow-shock grids: run a coarse
//! solve, locate the shock along each body-normal line, rebuild the grid
//! with the outer boundary following the shock at a set margin. Two or
//! three passes put ~40% of the points inside the shock layer instead of
//! wasting them on undisturbed freestream — the "solution-adaptive
//! techniques … necessary to optimize the use of memory" of the paper's
//! closing challenges.

use crate::bodies::Body;
use crate::structured::StructuredGrid;

/// Smooth a per-station shock-distance profile and add a margin, producing
/// a per-station envelope suitable for [`blunt_body_adapted`].
///
/// `shock_distance[i]` is the detected shock standoff along station `i`
/// (NaN where no shock was found — filled by neighbor propagation);
/// `margin` is the fractional extra distance beyond the shock (≥ ~0.2 so
/// the captured shock never touches the boundary).
///
/// # Panics
/// Panics when every entry is NaN.
#[must_use]
pub fn shock_envelope(shock_distance: &[f64], margin: f64) -> Vec<f64> {
    let n = shock_distance.len();
    assert!(n > 0);
    // Fill NaNs from the nearest valid neighbor.
    let mut filled: Vec<f64> = shock_distance.to_vec();
    let any_valid = filled.iter().any(|v| v.is_finite());
    assert!(any_valid, "no shock detected on any station");
    for i in 0..n {
        if !filled[i].is_finite() {
            let mut k = 1;
            loop {
                let lo = i
                    .checked_sub(k)
                    .map(|m| filled[m])
                    .filter(|v| v.is_finite());
                let hi = filled.get(i + k).copied().filter(|v| v.is_finite());
                if let Some(v) = lo.or(hi) {
                    filled[i] = v;
                    break;
                }
                k += 1;
            }
        }
    }
    // Three passes of a 1-2-1 filter, then the margin; enforce monotone
    // non-shrinking away from the nose (bow shocks open downstream).
    for _ in 0..3 {
        let prev = filled.clone();
        for i in 0..n {
            let lo = prev[i.saturating_sub(1)];
            let hi = prev[(i + 1).min(n - 1)];
            filled[i] = 0.25 * lo + 0.5 * prev[i] + 0.25 * hi;
        }
    }
    let mut out: Vec<f64> = filled.iter().map(|d| d * (1.0 + margin)).collect();
    for i in 1..n {
        if out[i] < out[i - 1] {
            out[i] = out[i - 1];
        }
    }
    out
}

/// Build a blunt-body grid whose outer boundary follows a per-station
/// envelope (same conventions as [`StructuredGrid::blunt_body`], but with
/// `envelope[i]` giving the normal-distance at station `i`).
///
/// # Panics
/// Panics on inconsistent sizes.
#[must_use]
pub fn blunt_body_adapted(
    body: &dyn Body,
    envelope: &[f64],
    wall_distribution: &[f64],
) -> StructuredGrid {
    let ni = envelope.len();
    assert!(ni >= 2);
    let nj = wall_distribution.len();
    assert!(nj >= 2);
    let smax = body.arc_length();
    let mut x = aerothermo_numerics::Field2::zeros(ni, nj);
    let mut r = aerothermo_numerics::Field2::zeros(ni, nj);
    for i in 0..ni {
        let s = smax * i as f64 / (ni - 1) as f64;
        let (xw, rw) = body.point(s);
        let (nx, nr) = body.normal(s);
        for (j, &xi) in wall_distribution.iter().enumerate() {
            let d = xi * envelope[i];
            x[(i, j)] = xw + nx * d;
            r[(i, j)] = (rw + nr * d).max(0.0);
            if i == 0 {
                r[(i, j)] = 0.0;
            }
        }
    }
    StructuredGrid {
        x,
        r,
        geometry: crate::structured::Geometry::Axisymmetric,
    }
}

/// Fraction of the normal extent occupied by the shock layer after
/// adaptation, given where the shock sits (`shock_distance`) on the adapted
/// grid: the adaptation quality figure of merit.
#[must_use]
pub fn shock_layer_fill(shock_distance: &[f64], envelope: &[f64]) -> f64 {
    let mut s = 0.0;
    let mut n = 0usize;
    for (d, e) in shock_distance.iter().zip(envelope) {
        if d.is_finite() && *e > 0.0 {
            s += d / e;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        s / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bodies::Hemisphere;
    use crate::stretch;

    #[test]
    fn envelope_fills_gaps_and_smooths() {
        let d = [0.1, f64::NAN, 0.12, 0.14, f64::NAN];
        let env = shock_envelope(&d, 0.3);
        assert_eq!(env.len(), 5);
        assert!(env.iter().all(|v| v.is_finite() && *v > 0.1));
        // Monotone non-decreasing.
        for w in env.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        // Margin applied.
        assert!(env[0] > 0.11);
    }

    #[test]
    #[should_panic(expected = "no shock detected")]
    fn all_nan_rejected() {
        let _ = shock_envelope(&[f64::NAN, f64::NAN], 0.3);
    }

    #[test]
    fn adapted_grid_matches_envelope() {
        let body = Hemisphere::new(1.0);
        let env = vec![0.2, 0.22, 0.25, 0.3, 0.36, 0.44, 0.5, 0.55];
        let dist = stretch::uniform(12);
        let g = blunt_body_adapted(&body, &env, &dist);
        assert_eq!(g.ni(), 8);
        assert_eq!(g.nj(), 12);
        // Outer node at station 0 must be 0.2 upstream of the nose.
        assert!((g.x[(0, 11)] + 0.2).abs() < 1e-9, "x = {}", g.x[(0, 11)]);
        // Wall nodes still on the body.
        let (xb, rb) = {
            use crate::bodies::Body as _;
            body.point(body.arc_length() * 3.0 / 7.0)
        };
        assert!((g.x[(3, 0)] - xb).abs() < 1e-9);
        assert!((g.r[(3, 0)] - rb).abs() < 1e-9);
        // Metrics remain valid.
        let m = crate::metrics::Metrics::new(&g);
        assert!(m.volume.as_slice().iter().all(|v| *v > 0.0));
    }

    #[test]
    fn fill_metric() {
        let d = [0.5, 0.5];
        let e = [1.0, 1.0];
        assert!((shock_layer_fill(&d, &e) - 0.5).abs() < 1e-12);
        assert_eq!(shock_layer_fill(&[f64::NAN], &[1.0]), 0.0);
    }
}
