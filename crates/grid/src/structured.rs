//! Single-block structured grids.
//!
//! Convention: node index `(i, j)` with `i` running along the body from the
//! stagnation line and `j` from the wall (`j = 0`) to the outer boundary
//! (`j = nj−1`). Blunt-body grids are built algebraically by marching along
//! the local body normal out to a prescribed shock-layer envelope.

use crate::bodies::Body;
use aerothermo_numerics::Field2;

/// Planar 2-D or axisymmetric interpretation of the `(x, r)` plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Geometry {
    /// `r` is the Cartesian y coordinate.
    Planar,
    /// `r` is the cylindrical radius; volumes/areas are per radian.
    #[default]
    Axisymmetric,
}

/// A single-block structured grid of nodes.
#[derive(Debug, Clone)]
pub struct StructuredGrid {
    /// Axial coordinate of each node \[m\].
    pub x: Field2<f64>,
    /// Radial (or y) coordinate of each node \[m\].
    pub r: Field2<f64>,
    /// Planar or axisymmetric.
    pub geometry: Geometry,
}

impl StructuredGrid {
    /// Number of nodes along `i`.
    #[must_use]
    pub fn ni(&self) -> usize {
        self.x.ni()
    }

    /// Number of nodes along `j`.
    #[must_use]
    pub fn nj(&self) -> usize {
        self.x.nj()
    }

    /// Number of cells along `i`.
    #[must_use]
    pub fn nci(&self) -> usize {
        self.ni() - 1
    }

    /// Number of cells along `j`.
    #[must_use]
    pub fn ncj(&self) -> usize {
        self.nj() - 1
    }

    /// Rectangular grid on `[0, lx] × [0, ly]` with uniform spacing — used by
    /// solver verification problems (Sod tube, vortex).
    ///
    /// # Panics
    /// Panics for fewer than 2 nodes per direction.
    #[must_use]
    pub fn rectangle(ni: usize, nj: usize, lx: f64, ly: f64, geometry: Geometry) -> Self {
        assert!(ni >= 2 && nj >= 2);
        let x = Field2::from_fn(ni, nj, |i, _| lx * i as f64 / (ni - 1) as f64);
        let r = Field2::from_fn(ni, nj, |_, j| ly * j as f64 / (nj - 1) as f64);
        Self { x, r, geometry }
    }

    /// Blunt-body shock-layer grid: `ni` nodes along the body (arc-length
    /// uniform), `nj` nodes along the local normal from the wall out to a
    /// distance `envelope(s̄)` (s̄ = normalized arc length), distributed by
    /// the normalized `wall_distribution` (length `nj`, from
    /// [`crate::stretch`]).
    ///
    /// # Panics
    /// Panics on inconsistent inputs.
    #[must_use]
    pub fn blunt_body(
        body: &dyn Body,
        ni: usize,
        nj: usize,
        envelope: &dyn Fn(f64) -> f64,
        wall_distribution: &[f64],
    ) -> Self {
        assert!(ni >= 2 && nj >= 2);
        assert_eq!(wall_distribution.len(), nj);
        let smax = body.arc_length();
        let mut x = Field2::zeros(ni, nj);
        let mut r = Field2::zeros(ni, nj);
        for i in 0..ni {
            let sbar = i as f64 / (ni - 1) as f64;
            let s = sbar * smax;
            let (xw, rw) = body.point(s);
            let (nx, nr) = body.normal(s);
            let delta = envelope(sbar);
            for (j, &xi) in wall_distribution.iter().enumerate() {
                let d = xi * delta;
                x[(i, j)] = xw + nx * d;
                // Keep the stagnation line exactly on the axis.
                r[(i, j)] = (rw + nr * d).max(0.0);
                if i == 0 {
                    r[(i, j)] = 0.0;
                }
            }
        }
        Self {
            x,
            r,
            geometry: Geometry::Axisymmetric,
        }
    }

    /// Cell centroid (arithmetic mean of the four corner nodes).
    #[must_use]
    pub fn cell_center(&self, i: usize, j: usize) -> (f64, f64) {
        let xc = 0.25
            * (self.x[(i, j)] + self.x[(i + 1, j)] + self.x[(i, j + 1)] + self.x[(i + 1, j + 1)]);
        let rc = 0.25
            * (self.r[(i, j)] + self.r[(i + 1, j)] + self.r[(i, j + 1)] + self.r[(i + 1, j + 1)]);
        (xc, rc)
    }

    /// Smallest cell diagonal — a conservative length scale for CFL limits.
    #[must_use]
    pub fn min_cell_size(&self) -> f64 {
        let mut dmin = f64::INFINITY;
        for i in 0..self.nci() {
            for j in 0..self.ncj() {
                let dx = self.x[(i + 1, j + 1)] - self.x[(i, j)];
                let dr = self.r[(i + 1, j + 1)] - self.r[(i, j)];
                dmin = dmin.min((dx * dx + dr * dr).sqrt());
            }
        }
        dmin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bodies::Hemisphere;
    use crate::stretch;

    #[test]
    fn rectangle_coords() {
        let g = StructuredGrid::rectangle(3, 2, 2.0, 1.0, Geometry::Planar);
        assert_eq!(g.ni(), 3);
        assert_eq!(g.nj(), 2);
        assert!((g.x[(2, 0)] - 2.0).abs() < 1e-14);
        assert!((g.r[(0, 1)] - 1.0).abs() < 1e-14);
        assert_eq!(g.nci(), 2);
    }

    #[test]
    fn blunt_body_wall_on_body() {
        let body = Hemisphere::new(1.0);
        let dist = stretch::uniform(9);
        let g = StructuredGrid::blunt_body(&body, 11, 9, &|_| 0.3, &dist);
        // j = 0 nodes must lie on the body.
        for i in 0..11 {
            let s = body.arc_length() * i as f64 / 10.0;
            let (xb, rb) = body.point(s);
            assert!((g.x[(i, 0)] - xb).abs() < 1e-12);
            assert!((g.r[(i, 0)] - rb).abs() < 1e-12);
        }
    }

    #[test]
    fn blunt_body_outer_at_envelope() {
        let body = Hemisphere::new(1.0);
        let dist = stretch::uniform(9);
        let g = StructuredGrid::blunt_body(&body, 11, 9, &|_| 0.3, &dist);
        // Outer node at the stagnation line: x = −0.3 (upstream of nose).
        assert!((g.x[(0, 8)] + 0.3).abs() < 1e-9, "x = {}", g.x[(0, 8)]);
        assert_eq!(g.r[(0, 8)], 0.0);
    }

    #[test]
    fn stagnation_line_stays_on_axis() {
        let body = Hemisphere::new(0.5);
        let dist = stretch::tanh_one_sided(12, 3.0);
        let g = StructuredGrid::blunt_body(&body, 8, 12, &|sb| 0.1 + 0.1 * sb, &dist);
        for j in 0..12 {
            assert_eq!(g.r[(0, j)], 0.0);
        }
    }

    #[test]
    fn min_cell_size_positive() {
        let body = Hemisphere::new(1.0);
        let dist = stretch::tanh_one_sided(15, 2.0);
        let g = StructuredGrid::blunt_body(&body, 21, 15, &|_| 0.25, &dist);
        let d = g.min_cell_size();
        assert!(d > 0.0 && d < 0.25, "min cell {d}");
    }

    #[test]
    fn cell_center_inside_cell() {
        let g = StructuredGrid::rectangle(4, 4, 3.0, 3.0, Geometry::Planar);
        let (xc, rc) = g.cell_center(1, 2);
        assert!(xc > 1.0 && xc < 2.0);
        assert!(rc > 2.0 && rc < 3.0);
    }
}
