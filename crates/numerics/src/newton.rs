//! Damped Newton iteration for small nonlinear systems.
//!
//! The equilibrium-composition solver, the VSL station solve, and the stiff
//! chemistry integrator all need "solve F(x) = 0 for a handful of unknowns,
//! robustly". This module provides a line-searched Newton with a
//! finite-difference Jacobian fallback.

use crate::linalg::{solve_dense, LinalgError};
use crate::telemetry::{counters, Counter};
use crate::trace;

/// Outcome of a Newton solve.
#[derive(Debug, Clone)]
pub struct NewtonResult {
    /// Iterations actually used.
    pub iterations: usize,
    /// Final residual ∞-norm.
    pub residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Failure modes of the Newton solver.
#[derive(Debug)]
pub enum NewtonError {
    /// Jacobian became singular.
    Singular(LinalgError),
    /// Residual failed to reach tolerance within the iteration budget.
    NotConverged {
        /// Final residual ∞-norm when the budget ran out.
        residual: f64,
    },
    /// The residual function produced a non-finite value at the initial guess.
    BadInitialPoint,
}

impl std::fmt::Display for NewtonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NewtonError::Singular(e) => write!(f, "newton: singular jacobian ({e})"),
            NewtonError::NotConverged { residual } => {
                write!(f, "newton: not converged, residual={residual:.3e}")
            }
            NewtonError::BadInitialPoint => write!(f, "newton: non-finite residual at x0"),
        }
    }
}

impl std::error::Error for NewtonError {}

/// Options controlling [`newton_solve`].
#[derive(Debug, Clone)]
pub struct NewtonOptions {
    /// Convergence tolerance on the residual ∞-norm.
    pub tol: f64,
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Relative step used by the finite-difference Jacobian.
    pub fd_eps: f64,
    /// Minimum damping factor before the step is declared failed.
    pub min_lambda: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            tol: 1e-10,
            max_iter: 60,
            fd_eps: 1e-7,
            min_lambda: 1e-4,
        }
    }
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Solve `F(x) = 0` with damped Newton and a forward-difference Jacobian.
///
/// `residual(x, f)` writes `F(x)` into `f`. `x` enters as the initial guess
/// and exits holding the solution. Armijo-style backtracking halves the step
/// until the residual norm decreases (or the damping floor is hit, in which
/// case the full step is accepted anyway — useful for mildly non-monotone
/// residuals near strong curvature).
///
/// # Errors
/// See [`NewtonError`].
pub fn newton_solve(
    mut residual: impl FnMut(&[f64], &mut [f64]),
    x: &mut [f64],
    opts: &NewtonOptions,
) -> Result<NewtonResult, NewtonError> {
    counters::add(Counter::NewtonSolves, 1);
    let _sp = trace::span("newton_solve");
    let n = x.len();
    let mut f = vec![0.0; n];
    let mut ftrial = vec![0.0; n];
    let mut jac = vec![0.0; n * n];
    let mut step = vec![0.0; n];
    let mut xpert = vec![0.0; n];

    residual(x, &mut f);
    if !f.iter().all(|v| v.is_finite()) {
        return Err(NewtonError::BadInitialPoint);
    }
    let mut fnorm = inf_norm(&f);

    // Flushes the iteration count to the global counter on every exit path.
    struct IterFlush(u64);
    impl Drop for IterFlush {
        fn drop(&mut self) {
            counters::add(Counter::NewtonIterations, self.0);
        }
    }
    let mut iter_flush = IterFlush(0);

    for it in 0..opts.max_iter {
        iter_flush.0 = it as u64;
        if fnorm <= opts.tol {
            return Ok(NewtonResult {
                iterations: it,
                residual: fnorm,
                converged: true,
            });
        }

        // Forward-difference Jacobian, column by column.
        for j in 0..n {
            xpert.copy_from_slice(x);
            let h = opts.fd_eps * x[j].abs().max(1e-8);
            xpert[j] += h;
            residual(&xpert, &mut ftrial);
            for i in 0..n {
                jac[i * n + j] = (ftrial[i] - f[i]) / h;
            }
        }

        // Newton step: J·dx = −F
        step.copy_from_slice(&f);
        for s in step.iter_mut() {
            *s = -*s;
        }
        let mut jcopy = jac.clone();
        if solve_dense(&mut jcopy, n, &mut step).is_err() {
            // Singular (or numerically rank-deficient) Jacobian: fall back to
            // Levenberg-Marquardt damping, escalating μ until the system
            // solves. Rank deficiency happens legitimately when a residual
            // direction is indeterminate (e.g. trace-species potentials in
            // chemical equilibrium); the damping picks the minimum-norm step.
            let jscale = jac.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-30);
            let mut mu = 1e-10 * jscale;
            let mut solved = false;
            for _ in 0..40 {
                step.copy_from_slice(&f);
                for s in step.iter_mut() {
                    *s = -*s;
                }
                jcopy.copy_from_slice(&jac);
                for k in 0..n {
                    jcopy[k * n + k] += mu;
                }
                if solve_dense(&mut jcopy, n, &mut step).is_ok() {
                    solved = true;
                    break;
                }
                mu *= 10.0;
            }
            if !solved {
                return Err(NewtonError::Singular(LinalgError::Singular(0)));
            }
        }

        // Backtracking line search on the residual norm.
        let mut lambda = 1.0;
        loop {
            for i in 0..n {
                xpert[i] = x[i] + lambda * step[i];
            }
            residual(&xpert, &mut ftrial);
            let tnorm = if ftrial.iter().all(|v| v.is_finite()) {
                inf_norm(&ftrial)
            } else {
                f64::INFINITY
            };
            if tnorm < fnorm || lambda <= opts.min_lambda {
                if tnorm.is_finite() {
                    x.copy_from_slice(&xpert);
                    f.copy_from_slice(&ftrial);
                    fnorm = tnorm;
                } else {
                    // Even the floor-damped step blew up: take a tiny step in
                    // the Newton direction and re-evaluate.
                    for i in 0..n {
                        x[i] += opts.min_lambda * 0.01 * step[i];
                    }
                    residual(x, &mut f);
                    fnorm = inf_norm(&f);
                }
                break;
            }
            lambda *= 0.5;
        }
    }

    if fnorm <= opts.tol * 100.0 {
        // Close enough for downstream use; report unconverged-but-usable.
        return Ok(NewtonResult {
            iterations: opts.max_iter,
            residual: fnorm,
            converged: false,
        });
    }
    Err(NewtonError::NotConverged { residual: fnorm })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_quadratic() {
        let mut x = vec![3.0];
        let r = newton_solve(
            |x, f| f[0] = x[0] * x[0] - 2.0,
            &mut x,
            &NewtonOptions::default(),
        )
        .unwrap();
        assert!(r.converged);
        assert!((x[0] - std::f64::consts::SQRT_2).abs() < 1e-8);
    }

    #[test]
    fn coupled_system() {
        // x² + y² = 4, x·y = 1 — solution in the first quadrant.
        let mut x = vec![2.0, 0.3];
        let r = newton_solve(
            |x, f| {
                f[0] = x[0] * x[0] + x[1] * x[1] - 4.0;
                f[1] = x[0] * x[1] - 1.0;
            },
            &mut x,
            &NewtonOptions::default(),
        )
        .unwrap();
        assert!(r.converged);
        assert!((x[0] * x[0] + x[1] * x[1] - 4.0).abs() < 1e-8);
        assert!((x[0] * x[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn damped_handles_poor_guess() {
        // exp(x) = 2 with a wild initial guess; undamped Newton from x=30
        // overflows, the line search must save it.
        let mut x = vec![30.0];
        let r = newton_solve(
            |x, f| f[0] = x[0].exp() - 2.0,
            &mut x,
            &NewtonOptions {
                max_iter: 200,
                ..NewtonOptions::default()
            },
        )
        .unwrap();
        assert!(r.residual < 1e-6);
        assert!((x[0] - 2.0_f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn degenerate_system_solved_by_levenberg_fallback() {
        // F(x, y) = (x + y − 3, x + y − 3) — singular Jacobian everywhere,
        // but solutions exist; the LM fallback must find one.
        let mut x = vec![1.0, 1.0];
        let res = newton_solve(
            |x, f| {
                f[0] = x[0] + x[1] - 3.0;
                f[1] = x[0] + x[1] - 3.0;
            },
            &mut x,
            &NewtonOptions::default(),
        )
        .unwrap();
        assert!(res.residual < 1e-8);
        assert!((x[0] + x[1] - 3.0).abs() < 1e-8);
    }
}
