//! ODE integrators: classic RK4, adaptive RKF45, and a stiff implicit
//! (backward-Euler with Newton) marcher.
//!
//! The stiff integrator is the workhorse for finite-rate chemistry, where the
//! time scales of the exchange reactions span many orders of magnitude — the
//! "single most complicating factor in CAT" per the paper. Backward Euler is
//! only first order, but its L-stability is exactly what a relaxing
//! post-shock state needs, and the step controller keeps the accuracy.

use crate::linalg::solve_dense;
use crate::telemetry::{counters, Counter};

/// Local accept/reject tally flushed to the global counters on drop, so
/// error returns are counted too and the hot loop pays no atomics.
struct StepTally {
    accepted: u64,
    rejected: u64,
}

impl StepTally {
    fn new() -> Self {
        Self {
            accepted: 0,
            rejected: 0,
        }
    }
}

impl Drop for StepTally {
    fn drop(&mut self) {
        if self.accepted > 0 {
            counters::add(Counter::OdeStepsAccepted, self.accepted);
        }
        if self.rejected > 0 {
            counters::add(Counter::OdeStepsRejected, self.rejected);
        }
    }
}

/// Right-hand side of `dy/dx = f(x, y)`: writes the derivative into `dydx`.
pub trait OdeSystem {
    /// Evaluate the derivative at `(x, y)`.
    fn rhs(&self, x: f64, y: &[f64], dydx: &mut [f64]);
}

impl<F: Fn(f64, &[f64], &mut [f64])> OdeSystem for F {
    fn rhs(&self, x: f64, y: &[f64], dydx: &mut [f64]) {
        self(x, y, dydx);
    }
}

/// One classic fourth-order Runge-Kutta step of size `h`; `y` is advanced in
/// place.
pub fn rk4_step(sys: &impl OdeSystem, x: f64, y: &mut [f64], h: f64) {
    let n = y.len();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut yt = vec![0.0; n];

    sys.rhs(x, y, &mut k1);
    for i in 0..n {
        yt[i] = y[i] + 0.5 * h * k1[i];
    }
    sys.rhs(x + 0.5 * h, &yt, &mut k2);
    for i in 0..n {
        yt[i] = y[i] + 0.5 * h * k2[i];
    }
    sys.rhs(x + 0.5 * h, &yt, &mut k3);
    for i in 0..n {
        yt[i] = y[i] + h * k3[i];
    }
    sys.rhs(x + h, &yt, &mut k4);
    for i in 0..n {
        y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

/// Integrate with fixed-step RK4 from `x0` to `x1` in `nsteps` steps.
pub fn rk4_integrate(sys: &impl OdeSystem, x0: f64, x1: f64, y: &mut [f64], nsteps: usize) {
    let h = (x1 - x0) / nsteps as f64;
    let mut x = x0;
    for _ in 0..nsteps {
        rk4_step(sys, x, y, h);
        x += h;
    }
}

/// Options for the adaptive integrators.
#[derive(Debug, Clone)]
pub struct AdaptiveOptions {
    /// Relative error tolerance.
    pub rtol: f64,
    /// Absolute error tolerance.
    pub atol: f64,
    /// Initial step size (sign ignored; direction from the interval).
    pub h0: f64,
    /// Smallest allowed |step|.
    pub hmin: f64,
    /// Largest allowed |step|.
    pub hmax: f64,
    /// Step budget.
    pub max_steps: usize,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        Self {
            rtol: 1e-8,
            atol: 1e-12,
            h0: 1e-4,
            hmin: 1e-14,
            hmax: f64::INFINITY,
            max_steps: 1_000_000,
        }
    }
}

/// Integration failure.
#[derive(Debug, Clone, PartialEq)]
pub enum OdeError {
    /// Step size underflowed `hmin` at the given abscissa.
    StepUnderflow(f64),
    /// `max_steps` exhausted at the given abscissa.
    TooManySteps(f64),
    /// Newton failed to converge inside the implicit solver.
    NewtonFailure(f64),
}

impl std::fmt::Display for OdeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OdeError::StepUnderflow(x) => write!(f, "ode: step underflow at x={x:.6e}"),
            OdeError::TooManySteps(x) => write!(f, "ode: too many steps at x={x:.6e}"),
            OdeError::NewtonFailure(x) => write!(f, "ode: implicit newton failed at x={x:.6e}"),
        }
    }
}

impl std::error::Error for OdeError {}

// Fehlberg 4(5) coefficients.
const RKF_A: [[f64; 5]; 5] = [
    [1.0 / 4.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
    [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
    [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
    [
        -8.0 / 27.0,
        2.0,
        -3544.0 / 2565.0,
        1859.0 / 4104.0,
        -11.0 / 40.0,
    ],
];
const RKF_C: [f64; 6] = [0.0, 0.25, 3.0 / 8.0, 12.0 / 13.0, 1.0, 0.5];
const RKF_B4: [f64; 6] = [
    25.0 / 216.0,
    0.0,
    1408.0 / 2565.0,
    2197.0 / 4104.0,
    -1.0 / 5.0,
    0.0,
];
const RKF_B5: [f64; 6] = [
    16.0 / 135.0,
    0.0,
    6656.0 / 12825.0,
    28561.0 / 56430.0,
    -9.0 / 50.0,
    2.0 / 55.0,
];

/// Adaptive RKF45 integration from `x0` to `x1`. Calls `observer(x, y)` after
/// every accepted step (including the initial state).
///
/// # Errors
/// See [`OdeError`].
pub fn rkf45_integrate(
    sys: &impl OdeSystem,
    x0: f64,
    x1: f64,
    y: &mut [f64],
    opts: &AdaptiveOptions,
    mut observer: impl FnMut(f64, &[f64]),
) -> Result<(), OdeError> {
    let n = y.len();
    let dir = if x1 >= x0 { 1.0 } else { -1.0 };
    let mut x = x0;
    let mut h = opts.h0.abs().max(opts.hmin) * dir;
    let mut k = vec![vec![0.0; n]; 6];
    let mut yt = vec![0.0; n];
    let mut y4 = vec![0.0; n];
    let mut y5 = vec![0.0; n];

    observer(x, y);
    let mut steps = 0;
    let mut tally = StepTally::new();
    while (x1 - x) * dir > 1e-14 * x1.abs().max(1.0) {
        if steps >= opts.max_steps {
            return Err(OdeError::TooManySteps(x));
        }
        steps += 1;
        if (x + h - x1) * dir > 0.0 {
            h = x1 - x;
        }

        sys.rhs(x, y, &mut k[0]);
        for s in 1..6 {
            for i in 0..n {
                let mut acc = y[i];
                for (j, kj) in k.iter().enumerate().take(s) {
                    acc += h * RKF_A[s - 1][j] * kj[i];
                }
                yt[i] = acc;
            }
            let (head, tail) = k.split_at_mut(s);
            let _ = head;
            sys.rhs(x + RKF_C[s] * h, &yt, &mut tail[0]);
        }

        let mut err = 0.0_f64;
        for i in 0..n {
            let mut s4 = y[i];
            let mut s5 = y[i];
            for j in 0..6 {
                s4 += h * RKF_B4[j] * k[j][i];
                s5 += h * RKF_B5[j] * k[j][i];
            }
            y4[i] = s4;
            y5[i] = s5;
            let sc = opts.atol + opts.rtol * y[i].abs().max(s5.abs());
            err = err.max(((s5 - s4) / sc).abs());
        }

        if err <= 1.0 || h.abs() <= opts.hmin * 1.0001 {
            x += h;
            y.copy_from_slice(&y5);
            observer(x, y);
            tally.accepted += 1;
        } else {
            tally.rejected += 1;
        }

        // PI-free simple controller.
        let factor = if err > 0.0 {
            (0.9 * err.powf(-0.2)).clamp(0.2, 5.0)
        } else {
            5.0
        };
        h *= factor;
        if h.abs() > opts.hmax {
            h = opts.hmax * dir;
        }
        if h.abs() < opts.hmin {
            if err > 1.0 {
                return Err(OdeError::StepUnderflow(x));
            }
            h = opts.hmin * dir;
        }
    }
    Ok(())
}

/// Stiff integrator: adaptive backward Euler with a damped Newton inner solve
/// and step-doubling error control.
///
/// Solves `y_{n+1} = y_n + h f(x_{n+1}, y_{n+1})` via Newton with a
/// finite-difference Jacobian, re-assembled every step (the systems here are
/// small — ≲ 15 unknowns — so Jacobian reuse isn't worth the complexity).
/// Error is estimated by comparing one full step against two half steps and
/// the step adapted to `rtol`/`atol` (first-order Richardson).
///
/// # Errors
/// See [`OdeError`].
pub fn stiff_integrate(
    sys: &impl OdeSystem,
    x0: f64,
    x1: f64,
    y: &mut [f64],
    opts: &AdaptiveOptions,
    mut observer: impl FnMut(f64, &[f64]),
) -> Result<(), OdeError> {
    let _sp = crate::trace::span("stiff_integrate");
    let dir = if x1 >= x0 { 1.0 } else { -1.0 };
    let mut x = x0;
    let mut h = opts.h0.abs().max(opts.hmin) * dir;
    let n = y.len();
    let mut yfull = vec![0.0; n];
    let mut yhalf = vec![0.0; n];

    observer(x, y);
    let mut steps = 0;
    let mut tally = StepTally::new();
    while (x1 - x) * dir > 1e-14 * x1.abs().max(1.0) {
        if steps >= opts.max_steps {
            return Err(OdeError::TooManySteps(x));
        }
        steps += 1;
        if (x + h - x1) * dir > 0.0 {
            h = x1 - x;
        }

        // One full step.
        yfull.copy_from_slice(y);
        let ok_full = be_step(sys, x, &mut yfull, h);
        // Two half steps.
        yhalf.copy_from_slice(y);
        let ok_half =
            be_step(sys, x, &mut yhalf, 0.5 * h) && be_step(sys, x + 0.5 * h, &mut yhalf, 0.5 * h);

        if !(ok_full && ok_half) {
            tally.rejected += 1;
            h *= 0.25;
            if h.abs() < opts.hmin {
                return Err(OdeError::NewtonFailure(x));
            }
            continue;
        }

        let mut err = 0.0_f64;
        for i in 0..n {
            let sc = opts.atol + opts.rtol * y[i].abs().max(yhalf[i].abs());
            err = err.max(((yhalf[i] - yfull[i]) / sc).abs());
        }

        if err <= 1.0 || h.abs() <= opts.hmin * 1.0001 {
            x += h;
            // Richardson extrapolation of the first-order scheme.
            for i in 0..n {
                y[i] = 2.0 * yhalf[i] - yfull[i];
            }
            observer(x, y);
            tally.accepted += 1;
        } else {
            tally.rejected += 1;
        }

        let factor = if err > 0.0 {
            (0.8 / err).clamp(0.2, 4.0)
        } else {
            4.0
        };
        h *= factor;
        if h.abs() > opts.hmax {
            h = opts.hmax * dir;
        }
        if h.abs() < opts.hmin {
            if err > 1.0 {
                return Err(OdeError::StepUnderflow(x));
            }
            h = opts.hmin * dir;
        }
    }
    Ok(())
}

/// Single backward-Euler step with Newton; returns false on Newton failure.
fn be_step(sys: &impl OdeSystem, x: f64, y: &mut [f64], h: f64) -> bool {
    let n = y.len();
    let xn = x + h;
    let y0: Vec<f64> = y.to_vec();
    let mut f = vec![0.0; n];
    let mut fpert = vec![0.0; n];
    let mut res = vec![0.0; n];
    let mut jac = vec![0.0; n * n];
    let mut ypert = vec![0.0; n];

    for _newton in 0..25 {
        sys.rhs(xn, y, &mut f);
        let mut rnorm = 0.0_f64;
        for i in 0..n {
            res[i] = y[i] - y0[i] - h * f[i];
            rnorm = rnorm.max(res[i].abs() / (1.0 + y[i].abs()));
        }
        if !rnorm.is_finite() {
            return false;
        }
        if rnorm < 1e-11 {
            return true;
        }

        // J = I − h ∂f/∂y (forward differences).
        for j in 0..n {
            ypert.copy_from_slice(y);
            let dy = 1e-7 * y[j].abs().max(1e-10);
            ypert[j] += dy;
            sys.rhs(xn, &ypert, &mut fpert);
            for i in 0..n {
                jac[i * n + j] = -h * (fpert[i] - f[i]) / dy;
            }
            jac[j * n + j] += 1.0;
        }

        let mut dx: Vec<f64> = res.iter().map(|r| -r).collect();
        if solve_dense(&mut jac, n, &mut dx).is_err() {
            return false;
        }
        for i in 0..n {
            y[i] += dx[i];
        }
        if !y.iter().all(|v| v.is_finite()) {
            return false;
        }
    }
    // Accept a slightly-unconverged Newton if the residual is small-ish.
    sys.rhs(xn, y, &mut f);
    let mut rnorm = 0.0_f64;
    for i in 0..n {
        rnorm = rnorm.max((y[i] - y0[i] - h * f[i]).abs() / (1.0 + y[i].abs()));
    }
    rnorm < 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rk4_exponential() {
        let sys = |_x: f64, y: &[f64], d: &mut [f64]| d[0] = -y[0];
        let mut y = vec![1.0];
        rk4_integrate(&sys, 0.0, 1.0, &mut y, 100);
        assert!((y[0] - (-1.0_f64).exp()).abs() < 1e-8);
    }

    #[test]
    fn rkf45_harmonic_oscillator() {
        // y'' = −y as a system; energy conserved.
        let sys = |_x: f64, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -y[0];
        };
        let mut y = vec![1.0, 0.0];
        rkf45_integrate(
            &sys,
            0.0,
            2.0 * std::f64::consts::PI,
            &mut y,
            &AdaptiveOptions {
                rtol: 1e-10,
                ..AdaptiveOptions::default()
            },
            |_, _| {},
        )
        .unwrap();
        assert!((y[0] - 1.0).abs() < 1e-7);
        assert!(y[1].abs() < 1e-7);
    }

    #[test]
    fn stiff_decay_fast_mode() {
        // Classic stiff test: y' = −1e6 (y − cos x) − sin x, exact y = cos x
        // after the fast transient dies.
        let sys = |x: f64, y: &[f64], d: &mut [f64]| {
            d[0] = -1e6 * (y[0] - x.cos()) - x.sin();
        };
        let mut y = vec![2.0]; // off the slow manifold
        stiff_integrate(
            &sys,
            0.0,
            1.0,
            &mut y,
            &AdaptiveOptions {
                rtol: 1e-6,
                atol: 1e-9,
                h0: 1e-8,
                ..AdaptiveOptions::default()
            },
            |_, _| {},
        )
        .unwrap();
        assert!((y[0] - 1.0_f64.cos()).abs() < 1e-4);
    }

    #[test]
    fn stiff_robertson_mass_conserved() {
        // Robertson chemistry problem: notoriously stiff; the three
        // concentrations must keep summing to one.
        let sys = |_x: f64, y: &[f64], d: &mut [f64]| {
            d[0] = -0.04 * y[0] + 1e4 * y[1] * y[2];
            d[1] = 0.04 * y[0] - 1e4 * y[1] * y[2] - 3e7 * y[1] * y[1];
            d[2] = 3e7 * y[1] * y[1];
        };
        let mut y = vec![1.0, 0.0, 0.0];
        stiff_integrate(
            &sys,
            0.0,
            100.0,
            &mut y,
            &AdaptiveOptions {
                rtol: 1e-6,
                atol: 1e-12,
                h0: 1e-6,
                ..AdaptiveOptions::default()
            },
            |_, _| {},
        )
        .unwrap();
        let sum: f64 = y.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "mass leak: {sum}");
        // Reference: at t = 100 the Robertson solution has y3 ≈ 0.38.
        assert!((y[2] - 0.38).abs() < 0.02, "y3 off reference: {y:?}");
        assert!(y[1] < 1e-4, "intermediate species should stay tiny: {y:?}");
    }

    #[test]
    fn rkf45_observer_sees_endpoints() {
        let sys = |_x: f64, _y: &[f64], d: &mut [f64]| d[0] = 1.0;
        let mut y = vec![0.0];
        let mut first = f64::NAN;
        let mut last = f64::NAN;
        rkf45_integrate(
            &sys,
            0.0,
            1.0,
            &mut y,
            &AdaptiveOptions::default(),
            |x, _| {
                if first.is_nan() {
                    first = x;
                }
                last = x;
            },
        )
        .unwrap();
        assert_eq!(first, 0.0);
        assert!((last - 1.0).abs() < 1e-12);
        assert!((y[0] - 1.0).abs() < 1e-10);
    }
}
