//! Scalar and block tridiagonal solvers (Thomas algorithm).
//!
//! Line-implicit discretizations — the VSL normal sweep, the PNS station
//! solve, point-implicit NS lines — all reduce to tridiagonal systems whose
//! entries are either scalars or small dense blocks (block size = number of
//! coupled unknowns). The block variant reuses the LU kernels from
//! [`crate::linalg`].

use crate::linalg::{lu_factor, lu_solve, LinalgError};
use crate::telemetry::{counters, Counter};
use crate::trace;

/// Solve a scalar tridiagonal system
/// `a[i]·x[i-1] + b[i]·x[i] + c[i]·x[i+1] = d[i]` in place; the solution
/// overwrites `d`. `a[0]` and `c[n-1]` are ignored.
///
/// ```
/// use aerothermo_numerics::tridiag::solve_tridiag;
/// // 2x = 2, x + 2y = 5  →  x = 1, y = 2.
/// let mut d = vec![2.0, 5.0];
/// solve_tridiag(&[0.0, 1.0], &[2.0, 2.0], &[0.0, 0.0], &mut d).unwrap();
/// assert!((d[0] - 1.0).abs() < 1e-12 && (d[1] - 2.0).abs() < 1e-12);
/// ```
///
/// # Errors
/// [`LinalgError::Singular`] when forward elimination hits a ~0 pivot, and
/// [`LinalgError::Dimension`] on length mismatch.
pub fn solve_tridiag(a: &[f64], b: &[f64], c: &[f64], d: &mut [f64]) -> Result<(), LinalgError> {
    counters::add(Counter::TridiagSolves, 1);
    let _sp = trace::span("tridiag_solve");
    let n = d.len();
    if a.len() != n || b.len() != n || c.len() != n {
        return Err(LinalgError::Dimension);
    }
    if n == 0 {
        return Ok(());
    }
    let mut cp = vec![0.0; n];
    if b[0].abs() < 1e-300 {
        return Err(LinalgError::Singular(0));
    }
    cp[0] = c[0] / b[0];
    d[0] /= b[0];
    for i in 1..n {
        let denom = b[i] - a[i] * cp[i - 1];
        if denom.abs() < 1e-300 {
            return Err(LinalgError::Singular(i));
        }
        cp[i] = c[i] / denom;
        d[i] = (d[i] - a[i] * d[i - 1]) / denom;
    }
    for i in (0..n - 1).rev() {
        d[i] -= cp[i] * d[i + 1];
    }
    Ok(())
}

/// Block tridiagonal solver.
///
/// Solves `A[i]·x[i-1] + B[i]·x[i] + C[i]·x[i+1] = d[i]` where each `A`, `B`,
/// `C` entry is an `m × m` row-major block and each `d[i]`, `x[i]` an
/// `m`-vector. All blocks are stored concatenated: `a`, `b`, `c` have length
/// `n·m·m` and `d` length `n·m`. `A[0]` and `C[n-1]` are ignored. The solution
/// overwrites `d`.
///
/// This is block Thomas: forward-eliminate with a dense LU of the running
/// diagonal block, back-substitute with the stored `B⁻¹C` products.
///
/// # Errors
/// Fails when a diagonal block becomes singular or dimensions mismatch.
pub fn solve_block_tridiag(
    a: &[f64],
    b: &[f64],
    c: &[f64],
    d: &mut [f64],
    n: usize,
    m: usize,
) -> Result<(), LinalgError> {
    counters::add(Counter::BlockTridiagSolves, 1);
    let _sp = trace::span("block_tridiag_solve");
    let mm = m * m;
    if a.len() != n * mm || b.len() != n * mm || c.len() != n * mm || d.len() != n * m {
        return Err(LinalgError::Dimension);
    }
    if n == 0 {
        return Ok(());
    }

    // Workspace: gamma[i] = B*⁻¹ C[i] (m×m per station), and the modified rhs
    // lives in d. B* is the Schur-complement diagonal block.
    let mut gamma = vec![0.0; n * mm];
    let mut bstar = vec![0.0; mm];
    let mut piv = vec![0usize; m];
    let mut col = vec![0.0; m];

    // Station 0.
    bstar.copy_from_slice(&b[0..mm]);
    lu_factor(&mut bstar, m, &mut piv)?;
    for j in 0..m {
        for (i, cv) in col.iter_mut().enumerate() {
            *cv = c[i * m + j];
        }
        lu_solve(&bstar, m, &piv, &mut col)?;
        for i in 0..m {
            gamma[i * m + j] = col[i];
        }
    }
    lu_solve(&bstar, m, &piv, &mut d[0..m])?;

    // Forward sweep.
    for k in 1..n {
        let ak = &a[k * mm..(k + 1) * mm];
        // B* = B[k] − A[k]·gamma[k−1]
        let gprev = &gamma[(k - 1) * mm..k * mm];
        for i in 0..m {
            for j in 0..m {
                let mut s = b[k * mm + i * m + j];
                for l in 0..m {
                    s -= ak[i * m + l] * gprev[l * m + j];
                }
                bstar[i * m + j] = s;
            }
        }
        lu_factor(&mut bstar, m, &mut piv)?;

        // d[k] ← B*⁻¹ (d[k] − A[k]·d[k−1])
        let (dprev, dcur) = d.split_at_mut(k * m);
        let dprev = &dprev[(k - 1) * m..];
        let dk = &mut dcur[..m];
        for i in 0..m {
            let mut s = dk[i];
            for l in 0..m {
                s -= ak[i * m + l] * dprev[l];
            }
            col[i] = s;
        }
        lu_solve(&bstar, m, &piv, &mut col)?;
        dk.copy_from_slice(&col);

        // gamma[k] = B*⁻¹ C[k]  (skip for the last station — unused)
        if k + 1 < n {
            for j in 0..m {
                for (i, cv) in col.iter_mut().enumerate() {
                    *cv = c[k * mm + i * m + j];
                }
                lu_solve(&bstar, m, &piv, &mut col)?;
                for i in 0..m {
                    gamma[k * mm + i * m + j] = col[i];
                }
            }
        }
    }

    // Back substitution: x[k] = d[k] − gamma[k]·x[k+1]
    for k in (0..n - 1).rev() {
        let (head, tail) = d.split_at_mut((k + 1) * m);
        let xk = &mut head[k * m..];
        let xnext = &tail[..m];
        let g = &gamma[k * mm..(k + 1) * mm];
        for i in 0..m {
            let mut s = xk[i];
            for l in 0..m {
                s -= g[i * m + l] * xnext[l];
            }
            xk[i] = s;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_tridiag_matches_direct() {
        // -u'' = f on a grid; classic [1 -2 1] system with known solution.
        let n = 6;
        let a = vec![1.0; n];
        let b = vec![-2.0; n];
        let c = vec![1.0; n];
        // Choose x = i², then d = x[i-1] - 2x[i] + x[i+1] with boundary terms.
        let xexact: Vec<f64> = (0..n).map(|i| (i * i) as f64).collect();
        let mut d = vec![0.0; n];
        for i in 0..n {
            let xm = if i > 0 { xexact[i - 1] } else { 0.0 };
            let xp = if i + 1 < n { xexact[i + 1] } else { 0.0 };
            d[i] = xm - 2.0 * xexact[i] + xp;
        }
        solve_tridiag(&a, &b, &c, &mut d).unwrap();
        for i in 0..n {
            assert!((d[i] - xexact[i]).abs() < 1e-10, "i={i}");
        }
    }

    #[test]
    fn scalar_tridiag_n1() {
        let mut d = vec![10.0];
        solve_tridiag(&[0.0], &[5.0], &[0.0], &mut d).unwrap();
        assert!((d[0] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn block_tridiag_reduces_to_scalar_when_m1() {
        let n = 5;
        let a = vec![1.0; n];
        let b = vec![-3.0; n];
        let c = vec![1.0; n];
        let d0: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();

        let mut d_scalar = d0.clone();
        solve_tridiag(&a, &b, &c, &mut d_scalar).unwrap();

        let mut d_block = d0;
        solve_block_tridiag(&a, &b, &c, &mut d_block, n, 1).unwrap();

        for i in 0..n {
            assert!((d_scalar[i] - d_block[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn block_tridiag_2x2_verified_by_residual() {
        // Build a random-ish diagonally dominant block system and verify the
        // residual of the returned solution.
        let n = 4;
        let m = 2;
        let mm = m * m;
        let mut state = 42u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut a = vec![0.0; n * mm];
        let mut b = vec![0.0; n * mm];
        let mut c = vec![0.0; n * mm];
        for k in 0..n {
            for e in 0..mm {
                a[k * mm + e] = next() * 0.3;
                c[k * mm + e] = next() * 0.3;
                b[k * mm + e] = next() * 0.3;
            }
            b[k * mm] += 4.0;
            b[k * mm + 3] += 4.0;
        }
        let d0: Vec<f64> = (0..n * m).map(|_| next()).collect();
        let mut x = d0.clone();
        solve_block_tridiag(&a, &b, &c, &mut x, n, m).unwrap();

        // residual
        for k in 0..n {
            for i in 0..m {
                let mut s = 0.0;
                if k > 0 {
                    for l in 0..m {
                        s += a[k * mm + i * m + l] * x[(k - 1) * m + l];
                    }
                }
                for l in 0..m {
                    s += b[k * mm + i * m + l] * x[k * m + l];
                }
                if k + 1 < n {
                    for l in 0..m {
                        s += c[k * mm + i * m + l] * x[(k + 1) * m + l];
                    }
                }
                assert!((s - d0[k * m + i]).abs() < 1e-10, "k={k} i={i}");
            }
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut d = vec![1.0, 2.0];
        assert!(matches!(
            solve_tridiag(&[0.0], &[1.0, 1.0], &[0.0, 0.0], &mut d),
            Err(LinalgError::Dimension)
        ));
    }
}
