//! Bracketed scalar root finding.
//!
//! Used throughout the gas models (temperature from internal energy, shock
//! jump relations, boundary-layer shooting) where a safe bracketed method is
//! worth more than raw Newton speed.

/// Error conditions for the root finders.
#[derive(Debug, Clone, PartialEq)]
pub enum RootError {
    /// `f(a)` and `f(b)` do not bracket a sign change.
    NoBracket {
        /// Residual at the lower endpoint.
        fa: f64,
        /// Residual at the upper endpoint.
        fb: f64,
    },
    /// The iteration budget was exhausted; carries the best estimate.
    MaxIterations(f64),
}

impl std::fmt::Display for RootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RootError::NoBracket { fa, fb } => {
                write!(f, "no sign change: f(a)={fa:.3e}, f(b)={fb:.3e}")
            }
            RootError::MaxIterations(x) => write!(f, "root iterations exhausted near {x:.6e}"),
        }
    }
}

impl std::error::Error for RootError {}

/// Bisection to absolute tolerance `tol` on the interval width.
///
/// # Errors
/// [`RootError::NoBracket`] when `f(a)·f(b) > 0`.
pub fn bisect(
    mut f: impl FnMut(f64) -> f64,
    mut a: f64,
    mut b: f64,
    tol: f64,
) -> Result<f64, RootError> {
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(RootError::NoBracket { fa, fb });
    }
    for _ in 0..200 {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if fm == 0.0 || (b - a).abs() < tol {
            return Ok(m);
        }
        if fa * fm < 0.0 {
            b = m;
        } else {
            a = m;
            fa = fm;
        }
    }
    Err(RootError::MaxIterations(0.5 * (a + b)))
}

/// Brent's method: inverse-quadratic/secant steps guarded by bisection.
/// Converges superlinearly on smooth functions while never leaving the
/// bracket.
///
/// # Errors
/// [`RootError::NoBracket`] when the endpoints do not bracket a root;
/// [`RootError::MaxIterations`] if 100 iterations do not reach `tol`.
pub fn brent(
    mut f: impl FnMut(f64) -> f64,
    mut a: f64,
    mut b: f64,
    tol: f64,
) -> Result<f64, RootError> {
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(RootError::NoBracket { fa, fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..100 {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // inverse quadratic interpolation
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // secant
            b - fb * (b - a) / (fb - fa)
        };

        let lo = (3.0 * a + b) / 4.0;
        let hi = b;
        let (lo, hi) = if lo < hi { (lo, hi) } else { (hi, lo) };
        let cond_bisect = s < lo
            || s > hi
            || (mflag && (s - b).abs() >= (b - c).abs() / 2.0)
            || (!mflag && (s - b).abs() >= d.abs() / 2.0)
            || (mflag && (b - c).abs() < tol)
            || (!mflag && d.abs() < tol);
        if cond_bisect {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = b - c;
        c = b;
        fc = fb;
        if fa * fs < 0.0 {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(RootError::MaxIterations(b))
}

/// Expand a bracket geometrically from an initial guess until `f` changes
/// sign, then polish with Brent. Handy for solving `T(e)` style inversions
/// where a physically sensible starting interval is known but not guaranteed.
///
/// # Errors
/// Fails when no sign change is found within `max_expand` doublings.
pub fn brent_expanding(
    mut f: impl FnMut(f64) -> f64,
    x0: f64,
    dx0: f64,
    lo_limit: f64,
    hi_limit: f64,
    tol: f64,
    max_expand: usize,
) -> Result<f64, RootError> {
    let mut a = (x0 - dx0).max(lo_limit);
    let mut b = (x0 + dx0).min(hi_limit);
    let mut fa = f(a);
    let mut fb = f(b);
    let mut k = 0;
    while fa * fb > 0.0 {
        if k >= max_expand {
            return Err(RootError::NoBracket { fa, fb });
        }
        let w = b - a;
        if fa.abs() < fb.abs() {
            a = (a - w).max(lo_limit);
            fa = f(a);
        } else {
            b = (b + w).min(hi_limit);
            fb = f(b);
        }
        if (a - lo_limit).abs() < 1e-300 && (b - hi_limit).abs() < 1e-300 && fa * fb > 0.0 {
            return Err(RootError::NoBracket { fa, fb });
        }
        k += 1;
    }
    brent(f, a, b, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn brent_sqrt2() {
        let r = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-14).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn brent_transcendental() {
        // cos x = x has root ~0.7390851332
        let r = brent(|x| x.cos() - x, 0.0, 1.0, 1e-14).unwrap();
        assert!((r - 0.739_085_133_2).abs() < 1e-9);
    }

    #[test]
    fn brent_no_bracket() {
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, 1e-10),
            Err(RootError::NoBracket { .. })
        ));
    }

    #[test]
    fn expanding_finds_far_root() {
        // Root at 1000, start near 1.
        let r = brent_expanding(|x| x - 1000.0, 1.0, 0.5, 0.0, 1e9, 1e-9, 60).unwrap();
        assert!((r - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn expanding_respects_limits() {
        // No root inside [0, 10].
        let res = brent_expanding(|x| x + 1.0, 5.0, 1.0, 0.0, 10.0, 1e-9, 60);
        assert!(res.is_err());
    }
}
