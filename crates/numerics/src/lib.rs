//! Numerical substrate for the `aerothermo` computational-aerothermodynamics
//! toolkit.
//!
//! This crate provides the building blocks shared by every flow solver and
//! physics model in the workspace:
//!
//! * [`field`] — dense row-major 2-D/3-D fields used for structured-grid data,
//! * [`linalg`] — small dense linear algebra (partial-pivot LU),
//! * [`tridiag`] — scalar and block tridiagonal (Thomas) solvers,
//! * [`ode`] — explicit (RK4, adaptive RKF45) and stiff implicit integrators,
//! * [`newton`] — damped Newton iteration for nonlinear systems,
//! * [`roots`] — bracketed scalar root finding (bisection, Brent),
//! * [`interp`] — linear / monotone-cubic interpolation and bilinear tables,
//! * [`quadrature`] — trapezoid, Simpson, Gauss-Legendre quadrature,
//! * [`limiters`] — TVD slope limiters for MUSCL reconstruction,
//! * [`simd`] — four-wide `f64` lanes for the vectorized flux/limiter
//!   kernels (SSE2 behind the `simd` feature, hand-unrolled scalar
//!   fallback otherwise, bitwise-identical semantics either way),
//! * [`constants`] — physical constants in SI units,
//! * [`telemetry`] — solver observability: kernel counters, phase timers,
//!   residual monitors with divergence detection, physics-audit findings,
//!   and the shared [`telemetry::SolverError`] type,
//! * [`trace`] — RAII hierarchical span profiler with Chrome trace-event
//!   export (`chrome://tracing` / Perfetto),
//! * [`metrics`] — typed gauge and log-bucketed timing-histogram registry
//!   with p50/p90/p99 summaries, JSON snapshots, and Prometheus-style
//!   text exposition.
//!
//! Everything is `f64`; the structured-grid solvers in `aerothermo-solvers`
//! are written against these primitives rather than an external array crate so
//! that memory layout (and hence vectorization) stays under our control.
#![warn(missing_docs)]
// Indexed loops over parallel arrays are the clearest idiom for the
// numerical kernels here; spelled-out spectroscopic constants keep their
// literature precision.
#![allow(
    clippy::needless_range_loop,
    clippy::excessive_precision,
    clippy::type_complexity
)]

pub mod constants;
pub mod field;
pub mod interp;
pub mod json;
pub mod limiters;
pub mod linalg;
pub mod metrics;
pub mod newton;
pub mod ode;
pub mod quadrature;
pub mod roots;
pub mod simd;
pub mod telemetry;
pub mod trace;
pub mod tridiag;

pub use field::{Field2, Field3};

/// Relative difference `|a - b| / max(|a|, |b|, floor)`.
///
/// Useful in tests and convergence checks where either value may be zero.
#[must_use]
pub fn rel_diff(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs()).max(1e-300);
    (a - b).abs() / scale
}

/// True when `a` and `b` agree to relative tolerance `tol` (or absolutely for
/// values smaller than `tol` itself).
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_diff_symmetric() {
        assert!((rel_diff(1.0, 2.0) - 0.5).abs() < 1e-15);
        assert!((rel_diff(2.0, 1.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn rel_diff_zero_safe() {
        assert_eq!(rel_diff(0.0, 0.0), 0.0);
    }

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-10));
        assert!(!approx_eq(1.0, 1.1, 1e-3));
        assert!(approx_eq(0.0, 1e-12, 1e-10));
    }
}
