//! Physical constants (SI units, CODATA-class values).
//!
//! All of the thermochemistry in `aerothermo-gas` is derived from statistical
//! mechanics, so the fundamental constants here are the single source of truth
//! for the whole workspace.

/// Universal gas constant \[J/(kmol·K)\].
pub const R_UNIVERSAL: f64 = 8314.462618;

/// Boltzmann constant \[J/K\].
pub const K_BOLTZMANN: f64 = 1.380649e-23;

/// Avogadro's number \[1/kmol\].
pub const N_AVOGADRO: f64 = 6.02214076e26;

/// Planck constant \[J·s\].
pub const H_PLANCK: f64 = 6.62607015e-34;

/// Speed of light in vacuum \[m/s\].
pub const C_LIGHT: f64 = 2.99792458e8;

/// Stefan-Boltzmann constant \[W/(m²·K⁴)\].
pub const SIGMA_SB: f64 = 5.670374419e-8;

/// Elementary charge \[C\].
pub const Q_ELECTRON: f64 = 1.602176634e-19;

/// Electron mass \[kg\].
pub const M_ELECTRON: f64 = 9.1093837015e-31;

/// Standard gravitational acceleration at Earth's surface \[m/s²\].
pub const G0_EARTH: f64 = 9.80665;

/// Earth mean radius \[m\].
pub const R_EARTH: f64 = 6.371e6;

/// Titan mean radius \[m\].
pub const R_TITAN: f64 = 2.575e6;

/// Titan surface gravity \[m/s²\].
pub const G0_TITAN: f64 = 1.352;

/// Standard atmosphere \[Pa\].
pub const P_ATM: f64 = 101_325.0;

/// One torr \[Pa\]. Shock-tube conditions in the 1980s literature are quoted
/// in torr (the paper's Fig. 7 case is 0.1 torr).
pub const TORR: f64 = 133.322;

/// Electron-volt expressed as a temperature \[K\] (eV / k_B).
pub const EV_IN_KELVIN: f64 = 11_604.518;

/// First radiation constant `2 h c²` \[W·m²\] for spectral radiance in
/// wavelength form.
pub const C1_RADIATION: f64 = 2.0 * H_PLANCK * C_LIGHT * C_LIGHT;

/// Second radiation constant `h c / k_B` \[m·K\].
pub const C2_RADIATION: f64 = H_PLANCK * C_LIGHT / K_BOLTZMANN;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boltzmann_times_avogadro_is_gas_constant() {
        let r = K_BOLTZMANN * N_AVOGADRO;
        assert!((r - R_UNIVERSAL).abs() / R_UNIVERSAL < 1e-9);
    }

    #[test]
    fn ev_in_kelvin_consistent() {
        let t = Q_ELECTRON / K_BOLTZMANN;
        assert!((t - EV_IN_KELVIN).abs() / EV_IN_KELVIN < 1e-6);
    }

    #[test]
    fn radiation_constants_positive() {
        const { assert!(C1_RADIATION > 0.0 && C2_RADIATION > 0.0) };
        // c2 ~ 1.4388e-2 m K
        assert!((C2_RADIATION - 1.4388e-2).abs() < 1e-5);
    }
}
