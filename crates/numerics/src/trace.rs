//! Hierarchical RAII span profiler with Chrome trace-event export.
//!
//! Where [`crate::telemetry::counters`] answers *how much work* a run did,
//! this module answers *where inside a solve the time went*: nested spans
//! opened around the hot kernels (Newton solves, tridiagonal sweeps,
//! chemistry substeps, equilibrium lookups, spectrum integration, solver
//! step loops) aggregate per-label call-count/min/max/total statistics and
//! optionally a full event timeline exportable as Chrome trace-event JSON —
//! a `--trace=PATH` run opens directly in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev).
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero overhead when disabled.** [`span`] is a single relaxed
//!    atomic load returning an inert guard; the instrumented kernels pay
//!    one branch.
//! 2. **Thread-aware.** Every thread (rayon workers included) records into
//!    its own buffer behind an uncontended mutex; buffers register
//!    themselves in a global list so [`stats`] and [`chrome_trace_json`]
//!    can merge them. Events carry a stable small thread id, so Perfetto
//!    renders one track per worker.
//! 3. **Dependency-free**, like the rest of the telemetry layer.
//!
//! Nesting needs no explicit bookkeeping: RAII scopes produce properly
//! contained `[start, start+dur]` intervals per thread, which is exactly
//! what the trace-event `"X"` (complete-event) phase encodes.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Per-thread event cap: beyond this the timeline drops events (stats keep
/// accumulating) so a pathological run cannot exhaust memory. 2^20 complete
/// events ≈ 48 MiB of JSON — ample for every figure run.
const MAX_EVENTS_PER_THREAD: usize = 1 << 20;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicUsize = AtomicUsize::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One completed span occurrence on one thread.
#[derive(Debug, Clone)]
struct SpanEvent {
    label: &'static str,
    /// Start offset from the profiler epoch \[ns\].
    start_ns: u64,
    /// Duration \[ns\].
    dur_ns: u64,
}

/// Aggregated statistics for one label on one thread.
#[derive(Debug, Clone)]
struct LabelStat {
    label: &'static str,
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

#[derive(Debug, Default)]
struct ThreadBuf {
    tid: usize,
    events: Vec<SpanEvent>,
    dropped: u64,
    stats: Vec<LabelStat>,
}

impl ThreadBuf {
    fn record(&mut self, label: &'static str, start_ns: u64, dur_ns: u64) {
        if self.events.len() < MAX_EVENTS_PER_THREAD {
            self.events.push(SpanEvent {
                label,
                start_ns,
                dur_ns,
            });
        } else {
            self.dropped += 1;
        }
        match self.stats.iter_mut().find(|s| s.label == label) {
            Some(s) => {
                s.count += 1;
                s.total_ns += dur_ns;
                s.min_ns = s.min_ns.min(dur_ns);
                s.max_ns = s.max_ns.max(dur_ns);
            }
            None => self.stats.push(LabelStat {
                label,
                count: 1,
                total_ns: dur_ns,
                min_ns: dur_ns,
                max_ns: dur_ns,
            }),
        }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Mutex<ThreadBuf>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<ThreadBuf>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Arc<Mutex<ThreadBuf>> = {
        let buf = Arc::new(Mutex::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            ..ThreadBuf::default()
        }));
        registry().lock().unwrap().push(Arc::clone(&buf));
        buf
    };
}

/// Turn the profiler on (spans start recording). Sets the trace epoch on
/// first call.
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the profiler off; spans opened afterwards are no-ops. Already
/// recorded data is retained until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether spans are currently recording.
#[inline]
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drop all recorded events and statistics on every thread.
pub fn reset() {
    for buf in registry().lock().unwrap().iter() {
        let mut b = buf.lock().unwrap();
        b.events.clear();
        b.stats.clear();
        b.dropped = 0;
    }
}

/// RAII guard returned by [`span`]; records the span on drop. Inert (and
/// free) when the profiler is disabled.
#[must_use = "a span guard records on drop; binding it to _ closes it immediately"]
pub struct Span {
    live: Option<(&'static str, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((label, start)) = self.live.take() {
            let dur_ns = start.elapsed().as_nanos() as u64;
            let start_ns = start.duration_since(epoch()).as_nanos() as u64;
            LOCAL.with(|buf| buf.lock().unwrap().record(label, start_ns, dur_ns));
        }
    }
}

/// Open a span; it closes (and records) when the guard drops. Labels must
/// be static strings — they are the aggregation key.
#[inline]
pub fn span(label: &'static str) -> Span {
    if !is_enabled() {
        return Span { live: None };
    }
    Span {
        live: Some((label, Instant::now())),
    }
}

/// Run `f` under a span (convenience wrapper for non-lexical scopes).
#[inline]
pub fn spanned<R>(label: &'static str, f: impl FnOnce() -> R) -> R {
    let _sp = span(label);
    f()
}

/// Merged per-label statistics across all threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Span label.
    pub label: &'static str,
    /// Completed occurrences.
    pub count: u64,
    /// Summed duration \[ns\].
    pub total_ns: u64,
    /// Shortest occurrence \[ns\].
    pub min_ns: u64,
    /// Longest occurrence \[ns\].
    pub max_ns: u64,
}

impl SpanStats {
    /// Mean duration per occurrence \[ns\] (0 when never recorded).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Aggregate statistics over every thread, sorted by total time descending.
#[must_use]
pub fn stats() -> Vec<SpanStats> {
    let mut merged: Vec<SpanStats> = Vec::new();
    for buf in registry().lock().unwrap().iter() {
        let b = buf.lock().unwrap();
        for s in &b.stats {
            match merged.iter_mut().find(|m| m.label == s.label) {
                Some(m) => {
                    m.count += s.count;
                    m.total_ns += s.total_ns;
                    m.min_ns = m.min_ns.min(s.min_ns);
                    m.max_ns = m.max_ns.max(s.max_ns);
                }
                None => merged.push(SpanStats {
                    label: s.label,
                    count: s.count,
                    total_ns: s.total_ns,
                    min_ns: s.min_ns,
                    max_ns: s.max_ns,
                }),
            }
        }
    }
    merged.sort_by_key(|s| std::cmp::Reverse(s.total_ns));
    merged
}

/// Drain the *calling thread's* recorded events into a standalone Chrome
/// trace-event JSON document, clearing that thread's buffer (events,
/// stats, dropped count). Returns `None` when the thread recorded nothing.
///
/// This is the per-case export the sweep engine uses for `--trace`: each
/// case runs pinned to one thread, so at case end the calling thread's
/// buffer holds exactly that case's spans, and draining it keeps the next
/// case on the same worker from inheriting them.
#[must_use]
pub fn drain_thread_chrome_json() -> Option<String> {
    LOCAL.with(|buf| {
        let mut b = buf.lock().unwrap();
        if b.events.is_empty() && b.stats.is_empty() {
            return None;
        }
        let mut s = String::with_capacity(1 << 12);
        s.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        s.push_str(
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
             \"args\": {\"name\": \"aerothermo\"}}",
        );
        for e in &b.events {
            s.push_str(&format!(
                ",\n{{\"name\": \"{}\", \"cat\": \"aerothermo\", \"ph\": \"X\", \
                 \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": {}}}",
                e.label,
                e.start_ns as f64 / 1e3,
                e.dur_ns as f64 / 1e3,
                b.tid
            ));
        }
        s.push_str("\n]}\n");
        b.events.clear();
        b.stats.clear();
        b.dropped = 0;
        Some(s)
    })
}

/// Timeline events dropped because a thread hit its event cap.
#[must_use]
pub fn dropped_events() -> u64 {
    registry()
        .lock()
        .unwrap()
        .iter()
        .map(|b| b.lock().unwrap().dropped)
        .sum()
}

/// Export every recorded event as Chrome trace-event JSON (the
/// `traceEvents` array of `"X"` complete events, timestamps in µs). The
/// output loads directly in `chrome://tracing` and Perfetto.
#[must_use]
pub fn chrome_trace_json() -> String {
    let mut s = String::with_capacity(1 << 16);
    s.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    s.push_str(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
         \"args\": {\"name\": \"aerothermo\"}}",
    );
    for buf in registry().lock().unwrap().iter() {
        let b = buf.lock().unwrap();
        for e in &b.events {
            // Label strings are static identifiers (no quotes/escapes).
            s.push_str(&format!(
                ",\n{{\"name\": \"{}\", \"cat\": \"aerothermo\", \"ph\": \"X\", \
                 \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": {}}}",
                e.label,
                e.start_ns as f64 / 1e3,
                e.dur_ns as f64 / 1e3,
                b.tid
            ));
        }
    }
    s.push_str("\n]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The profiler state is process-global; serialize the tests that
    /// enable/reset it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock();
        reset();
        disable();
        {
            let _sp = span("trace_test_disabled");
        }
        assert!(stats().iter().all(|s| s.label != "trace_test_disabled"));
    }

    #[test]
    fn nested_spans_aggregate_per_label() {
        let _g = lock();
        reset();
        enable();
        for _ in 0..3 {
            let _outer = span("trace_test_outer");
            for _ in 0..4 {
                let _inner = span("trace_test_inner");
                std::hint::black_box(1.0_f64.sqrt());
            }
        }
        disable();
        let st = stats();
        let outer = st.iter().find(|s| s.label == "trace_test_outer").unwrap();
        let inner = st.iter().find(|s| s.label == "trace_test_inner").unwrap();
        assert_eq!(outer.count, 3);
        assert_eq!(inner.count, 12);
        assert!(outer.min_ns <= outer.max_ns);
        assert!(outer.total_ns >= outer.max_ns);
        assert!(inner.mean_ns() <= inner.max_ns);
        reset();
    }

    #[test]
    fn chrome_export_is_balanced_json_with_events() {
        let _g = lock();
        reset();
        enable();
        spanned("trace_test_export", || std::hint::black_box(2 + 2));
        disable();
        let json = chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"trace_test_export\""));
        assert!(json.contains("\"ph\": \"X\""));
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close);
        reset();
    }

    #[test]
    fn worker_threads_get_their_own_tracks() {
        let _g = lock();
        reset();
        enable();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(|| spanned("trace_test_worker", || std::hint::black_box(1 + 1)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        disable();
        let st = stats();
        let w = st.iter().find(|s| s.label == "trace_test_worker").unwrap();
        assert_eq!(w.count, 2);
        reset();
    }
}
