//! Solver telemetry and convergence observability.
//!
//! Dependency-free instrumentation threaded through every solver and hot
//! kernel in the workspace:
//!
//! - [`counters`]: process-wide named counters (Newton iterations,
//!   tridiagonal solves, chemistry substeps, rejected ODE steps, …) backed
//!   by relaxed atomics — one integer add per *solve*, not per cell, so the
//!   overhead on the solver kernels is unmeasurable.
//! - [`RunTelemetry`]: a per-run sink collecting monotonic wall-clock phase
//!   timings, residual convergence histories, and the counter deltas
//!   attributable to the run.
//! - [`ResidualMonitor`]: per-iteration residual recording with early
//!   NaN/Inf detection and sliding-window divergence detection, so an
//!   unstable run terminates with [`SolverError::Diverged`] instead of
//!   spinning to the iteration cap.
//! - [`AuditFinding`]: the record type produced by the in-situ physics
//!   auditors in `aerothermo-solvers` (flux budgets, element conservation,
//!   positivity, …) and surfaced in `--report` JSON; hard failures escalate
//!   to [`SolverError::AuditFailed`].
//! - [`SolverError`]: the typed error shared by all equation-set solvers,
//!   replacing the previous bare `String` errors. `Display` output keeps
//!   the wording of the old messages (lower-level `String` diagnostics pass
//!   through [`SolverError::Numerical`] verbatim).

use std::time::Instant;

/// Named process-wide counters incremented by the numerical kernels.
pub mod counters {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// The fixed set of instrumented kernel events.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    #[repr(usize)]
    pub enum Counter {
        /// Damped-Newton solves started ([`crate::newton::newton_solve`]).
        NewtonSolves,
        /// Total Newton iterations across all solves.
        NewtonIterations,
        /// Scalar tridiagonal (Thomas) solves.
        TridiagSolves,
        /// Block-tridiagonal solves.
        BlockTridiagSolves,
        /// Chemistry operator-split substeps (reacting solver).
        ChemistrySubsteps,
        /// Accepted adaptive ODE steps (RKF45 + stiff backward Euler).
        OdeStepsAccepted,
        /// Rejected (error-controlled retry) adaptive ODE steps.
        OdeStepsRejected,
        /// Equilibrium-composition state evaluations.
        EquilibriumStates,
        /// Spectrum wavelength-point evaluations (radiation).
        SpectrumPoints,
        /// Face fluxes evaluated by the face-based residual assembly.
        FacesEvaluated,
        /// Equilibrium solves seeded from the warm-start cache.
        EquilibriumCacheHits,
        /// Equilibrium solves with no usable cached neighbor.
        EquilibriumCacheMisses,
        /// Newton iterations started from a cached element-potential
        /// vector instead of the cold pre-balance sweep.
        NewtonWarmStarts,
        /// Run-control checkpoints serialized to disk.
        CheckpointsWritten,
        /// Run-control rollback/retry events (checkpoint restores and
        /// single-shot backoff retries).
        RunRollbacks,
        /// Micro-batched equilibrium Newton passes (each covers 1–4 states).
        EquilibriumBatches,
        /// States evaluated through the micro-batched equilibrium path.
        EquilibriumBatchStates,
        /// Equilibrium batches that ran with exactly 1 lane.
        EquilibriumBatchLanes1,
        /// Equilibrium batches that ran with exactly 2 lanes.
        EquilibriumBatchLanes2,
        /// Equilibrium batches that ran with exactly 3 lanes.
        EquilibriumBatchLanes3,
        /// Equilibrium batches that ran with the full 4 lanes.
        EquilibriumBatchLanes4,
        /// Faces evaluated by the four-wide vectorized flux kernel (the
        /// remainder of [`Counter::FacesEvaluated`] went through the scalar
        /// boundary/tail path).
        FluxSimdFaces,
        /// Stagnation-heating queries answered by the surrogate fast path
        /// (single and batched).
        SurrogateQueries,
        /// Surrogate response-surface tables built (each build walks the
        /// exact path over the whole grid, so a resident table should pin
        /// this at 1 while `SurrogateQueries` grows).
        SurrogateBuilds,
        /// Stagnation-heating queries that fell back to the exact
        /// `StagnationResponse` path because the point lay outside the
        /// resident table's corridor.
        SurrogateExactFallbacks,
    }

    /// Number of distinct counters.
    pub const N_COUNTERS: usize = 25;

    impl Counter {
        /// Every counter, in declaration order.
        pub const ALL: [Counter; N_COUNTERS] = [
            Counter::NewtonSolves,
            Counter::NewtonIterations,
            Counter::TridiagSolves,
            Counter::BlockTridiagSolves,
            Counter::ChemistrySubsteps,
            Counter::OdeStepsAccepted,
            Counter::OdeStepsRejected,
            Counter::EquilibriumStates,
            Counter::SpectrumPoints,
            Counter::FacesEvaluated,
            Counter::EquilibriumCacheHits,
            Counter::EquilibriumCacheMisses,
            Counter::NewtonWarmStarts,
            Counter::CheckpointsWritten,
            Counter::RunRollbacks,
            Counter::EquilibriumBatches,
            Counter::EquilibriumBatchStates,
            Counter::EquilibriumBatchLanes1,
            Counter::EquilibriumBatchLanes2,
            Counter::EquilibriumBatchLanes3,
            Counter::EquilibriumBatchLanes4,
            Counter::FluxSimdFaces,
            Counter::SurrogateQueries,
            Counter::SurrogateBuilds,
            Counter::SurrogateExactFallbacks,
        ];

        /// Stable snake_case name (used as the JSON report key).
        #[must_use]
        pub fn name(self) -> &'static str {
            match self {
                Counter::NewtonSolves => "newton_solves",
                Counter::NewtonIterations => "newton_iterations",
                Counter::TridiagSolves => "tridiag_solves",
                Counter::BlockTridiagSolves => "block_tridiag_solves",
                Counter::ChemistrySubsteps => "chemistry_substeps",
                Counter::OdeStepsAccepted => "ode_steps_accepted",
                Counter::OdeStepsRejected => "ode_steps_rejected",
                Counter::EquilibriumStates => "equilibrium_states",
                Counter::SpectrumPoints => "spectrum_points",
                Counter::FacesEvaluated => "faces_evaluated",
                Counter::EquilibriumCacheHits => "equilibrium_cache_hits",
                Counter::EquilibriumCacheMisses => "equilibrium_cache_misses",
                Counter::NewtonWarmStarts => "newton_warm_starts",
                Counter::CheckpointsWritten => "checkpoints_written",
                Counter::RunRollbacks => "run_rollbacks",
                Counter::EquilibriumBatches => "equilibrium_batches",
                Counter::EquilibriumBatchStates => "equilibrium_batch_states",
                Counter::EquilibriumBatchLanes1 => "equilibrium_batch_lanes_1",
                Counter::EquilibriumBatchLanes2 => "equilibrium_batch_lanes_2",
                Counter::EquilibriumBatchLanes3 => "equilibrium_batch_lanes_3",
                Counter::EquilibriumBatchLanes4 => "equilibrium_batch_lanes_4",
                Counter::FluxSimdFaces => "flux_simd_faces",
                Counter::SurrogateQueries => "surrogate_queries",
                Counter::SurrogateBuilds => "surrogate_builds",
                Counter::SurrogateExactFallbacks => "surrogate_exact_fallbacks",
            }
        }
    }

    #[allow(clippy::declare_interior_mutable_const)]
    const COUNTER_ZERO: AtomicU64 = AtomicU64::new(0);
    static COUNTERS: [AtomicU64; N_COUNTERS] = [COUNTER_ZERO; N_COUNTERS];

    thread_local! {
        /// Per-thread mirror of the global counters, incremented alongside
        /// them. This is what makes honest *per-case* attribution possible
        /// when many solver runs share the process (the sweep engine):
        /// the global atomics interleave counts from concurrent cases,
        /// while each thread's mirror only ever sees the work that
        /// executed on that thread.
        static THREAD_COUNTERS: [std::cell::Cell<u64>; N_COUNTERS] =
            std::array::from_fn(|_| std::cell::Cell::new(0));
    }

    /// Add `n` to a counter (relaxed; safe from any thread). The calling
    /// thread's mirror is incremented too (see [`super::TelemetryScope`]).
    #[inline]
    pub fn add(counter: Counter, n: u64) {
        COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
        // try_with: silently skip the mirror during TLS teardown.
        let _ = THREAD_COUNTERS.try_with(|t| {
            let c = &t[counter as usize];
            c.set(c.get().wrapping_add(n));
        });
    }

    /// Snapshot the *calling thread's* counter mirror (counts attributed
    /// to kernels that executed on this thread since it started).
    #[must_use]
    pub fn thread_snapshot() -> CounterSnapshot {
        let mut values = [0u64; N_COUNTERS];
        let _ = THREAD_COUNTERS.try_with(|t| {
            for (v, c) in values.iter_mut().zip(t.iter()) {
                *v = c.get();
            }
        });
        CounterSnapshot { values }
    }

    /// Current value of one counter.
    #[must_use]
    pub fn get(counter: Counter) -> u64 {
        COUNTERS[counter as usize].load(Ordering::Relaxed)
    }

    /// Reset every counter to zero (tests and bench harnesses only).
    pub fn reset_all() {
        for c in &COUNTERS {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Zero the *calling thread's* counter mirror. Mirrors are `Cell`s and
    /// cannot be reached cross-thread; per-case attribution on other
    /// threads is windowed through [`super::TelemetryScope`] baselines, so
    /// only the thread running back-to-back `#[test]` functions needs
    /// this.
    pub fn reset_thread_mirror() {
        let _ = THREAD_COUNTERS.try_with(|t| {
            for c in t.iter() {
                c.set(0);
            }
        });
    }

    /// A point-in-time copy of all counters.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct CounterSnapshot {
        values: [u64; N_COUNTERS],
    }

    impl CounterSnapshot {
        /// Snapshot the current counter values.
        #[must_use]
        pub fn take() -> Self {
            let mut values = [0u64; N_COUNTERS];
            for (v, c) in values.iter_mut().zip(&COUNTERS) {
                *v = c.load(Ordering::Relaxed);
            }
            Self { values }
        }

        /// Counters accumulated since `earlier` (saturating).
        #[must_use]
        pub fn delta_since(&self, earlier: &Self) -> Self {
            let mut values = [0u64; N_COUNTERS];
            for i in 0..N_COUNTERS {
                values[i] = self.values[i].saturating_sub(earlier.values[i]);
            }
            Self { values }
        }

        /// Value of one counter in this snapshot.
        #[must_use]
        pub fn get(&self, counter: Counter) -> u64 {
            self.values[counter as usize]
        }

        /// Iterate `(name, value)` pairs in declaration order.
        pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
            Counter::ALL
                .iter()
                .map(|&c| (c.name(), self.values[c as usize]))
        }
    }
}

pub use counters::{Counter, CounterSnapshot};

/// Reset *all* process-global observability state: kernel counters (global
/// atomics plus the calling thread's mirror), every thread's trace buffer,
/// and every thread's metrics shard (timing histograms and gauges).
///
/// This is the between-`#[test]` reset: the test runner reuses threads
/// across `#[test]` functions, so thread-local state bleeds between tests
/// unless cleared here. Not for use mid-run.
pub fn reset_all() {
    counters::reset_all();
    counters::reset_thread_mirror();
    crate::trace::reset();
    crate::metrics::reset_all();
}

/// Thread-scoped counter window for per-run attribution.
///
/// The kernel counters are process-global atomics, so two solver runs
/// executing concurrently (sweep-engine cases, parallel tests) interleave
/// their counts and a global before/after delta lies about both. A
/// `TelemetryScope` instead deltas the calling thread's *thread-local
/// counter mirror*, which only ever accumulates work executed on that
/// thread.
///
/// # Attribution semantics
///
/// Counts are attributed to the thread that *executes* the instrumented
/// kernel, not the thread that requested it. Work a solver offloads to
/// rayon pool threads therefore lands on those threads' mirrors and is
/// **not** folded back into the calling scope. Callers that need complete
/// attribution must pin the run to the calling thread — e.g. wrap it in
/// `rayon::ThreadPoolBuilder::new().num_threads(1)...install(..)`, which
/// is exactly what the sweep engine's worker pool does: inter-case
/// parallelism comes from the pool's workers, each case runs its kernels
/// single-threaded, and every count lands in the case's scope.
///
/// Scopes on the same thread may nest (each holds its own baseline), and
/// the global counters are untouched — process-wide totals and per-scope
/// windows coexist.
#[derive(Debug, Clone)]
pub struct TelemetryScope {
    baseline: CounterSnapshot,
}

impl TelemetryScope {
    /// Open a scope: snapshot the calling thread's counter mirror.
    #[must_use]
    pub fn begin() -> Self {
        Self {
            baseline: counters::thread_snapshot(),
        }
    }

    /// Counters accumulated *on this thread* since [`TelemetryScope::begin`].
    /// Call from the same thread that opened the scope; from any other
    /// thread the delta is against that thread's unrelated mirror and is
    /// meaningless.
    #[must_use]
    pub fn thread_delta(&self) -> CounterSnapshot {
        counters::thread_snapshot().delta_since(&self.baseline)
    }
}

/// Outcome class of one physics-audit evaluation.
///
/// The auditors in `aerothermo-solvers::audit` grade every invariant check
/// into one of three bands: within tolerance, suspicious but survivable, or
/// bad enough that continuing the solve would only propagate garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AuditSeverity {
    /// The invariant holds within its soft tolerance.
    Pass,
    /// The invariant is violated beyond the soft tolerance but under the
    /// hard threshold — recorded and surfaced, the solve continues.
    Warn,
    /// The invariant is violated beyond the hard threshold; the solve
    /// aborts with [`SolverError::AuditFailed`].
    Fail,
}

impl AuditSeverity {
    /// Stable lowercase name (used as the JSON report value).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AuditSeverity::Pass => "pass",
            AuditSeverity::Warn => "warn",
            AuditSeverity::Fail => "fail",
        }
    }
}

/// One evaluated physics invariant: which audit ran, how badly the
/// invariant was violated, and against what threshold.
///
/// `value` is always the *violation measure* (relative imbalance, deficit
/// magnitude, …) so that `value <= threshold` ⇒ pass regardless of which
/// physical quantity the audit inspects.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditFinding {
    /// Stable audit identifier, e.g. `"mass_flux_budget"`.
    pub audit: &'static str,
    /// Graded outcome.
    pub severity: AuditSeverity,
    /// Measured violation (dimensionless unless `detail` says otherwise).
    pub value: f64,
    /// The threshold the severity was graded against: the warn threshold
    /// for `Pass`/`Warn` findings, the fail threshold for `Fail`.
    pub threshold: f64,
    /// Solver step (or station/point index) at which the audit ran.
    pub step: usize,
    /// Human-readable context: what was measured and where.
    pub detail: String,
}

impl std::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} at step {}: {:.3e} (threshold {:.3e}) — {}",
            self.severity.name(),
            self.audit,
            self.step,
            self.value,
            self.threshold,
            self.detail
        )
    }
}

/// Typed error shared by every equation-set solver and instrumented kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The residual grew past the divergence threshold; the run was cut
    /// short instead of spinning to the iteration cap.
    Diverged {
        /// Iteration at which divergence was detected.
        iter: usize,
        /// Residual value at detection.
        residual: f64,
    },
    /// A NaN/Inf appeared in the named field at cell `(i, j)` (for
    /// residual-level detection without a cell, `i` is the iteration and
    /// `j` is 0).
    NonFinite {
        /// Field or quantity that went non-finite.
        field: &'static str,
        /// First affected i-index (or iteration).
        i: usize,
        /// First affected j-index.
        j: usize,
    },
    /// An iteration budget ran out without meeting the tolerance.
    IterationLimit {
        /// What was iterating (e.g. "VSL standoff iteration").
        context: String,
        /// The budget that was exhausted.
        iters: usize,
        /// Residual when the budget ran out (NaN if unknown).
        residual: f64,
    },
    /// A physics audit measured an invariant violation past its hard
    /// threshold (mass leaking from the domain, negative temperatures, …).
    AuditFailed {
        /// Stable audit identifier, e.g. `"mass_flux_budget"`.
        audit: String,
        /// Measured violation.
        value: f64,
        /// Hard threshold that was exceeded.
        threshold: f64,
    },
    /// The problem specification itself is invalid.
    BadInput(String),
    /// A lower-level numerical routine failed; the message is preserved
    /// verbatim (this is the compatibility path for the old `String`
    /// errors).
    Numerical(String),
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::Diverged { iter, residual } => {
                write!(
                    f,
                    "solver diverged at iteration {iter} (residual {residual:.3e})"
                )
            }
            SolverError::NonFinite { field, i, j } => {
                if *field == "residual" && *j == 0 {
                    // Residual-level detection has no cell: `i` is the
                    // iteration index, and printing it as a coordinate pair
                    // misleads whoever reads the log.
                    write!(f, "non-finite residual at iteration {i}")
                } else {
                    write!(f, "non-finite {field} at ({i}, {j})")
                }
            }
            SolverError::AuditFailed {
                audit,
                value,
                threshold,
            } => {
                write!(
                    f,
                    "physics audit '{audit}' failed: {value:.3e} exceeds hard threshold {threshold:.3e}"
                )
            }
            SolverError::IterationLimit {
                context,
                iters,
                residual,
            } => {
                if residual.is_finite() {
                    write!(f, "{context} did not converge in {iters} iterations (residual {residual:.3e})")
                } else {
                    write!(f, "{context} did not converge in {iters} iterations")
                }
            }
            SolverError::BadInput(msg) | SolverError::Numerical(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SolverError {}

impl From<String> for SolverError {
    fn from(msg: String) -> Self {
        SolverError::Numerical(msg)
    }
}

impl From<&str> for SolverError {
    fn from(msg: &str) -> Self {
        SolverError::Numerical(msg.to_string())
    }
}

/// Tuning for [`ResidualMonitor`]'s divergence detection.
#[derive(Debug, Clone)]
pub struct MonitorOptions {
    /// Iterations ignored before divergence checks arm (startup transients
    /// legitimately grow the residual while the flow field forms).
    pub grace: usize,
    /// Declare divergence when the residual exceeds `growth_ratio` × the
    /// best residual seen so far (after `grace`).
    pub growth_ratio: f64,
    /// Sliding-window length: divergence also triggers when the residual
    /// has grown monotonically across this many consecutive iterations by
    /// at least `window_growth` overall.
    pub window: usize,
    /// Minimum overall growth across the window to call it divergence.
    pub window_growth: f64,
}

impl Default for MonitorOptions {
    fn default() -> Self {
        Self {
            grace: 50,
            growth_ratio: 1e6,
            window: 25,
            window_growth: 1e3,
        }
    }
}

/// Per-iteration residual recorder with early NaN/Inf and divergence
/// detection.
///
/// Feed it the residual each solver iteration already computes; it returns
/// `Err` as soon as the history is demonstrably diverging so the caller can
/// abort with a typed [`SolverError`] instead of running to the cap.
#[derive(Debug, Clone)]
pub struct ResidualMonitor {
    history: Vec<f64>,
    /// Divergence reference: best residual *after* the grace window (see
    /// the comment in [`ResidualMonitor::record`]). Kept as a bare f64
    /// sentinel because it is only ever compared against, never reported.
    best: f64,
    /// Reporting value: best finite residual over the whole history, or
    /// `None` when nothing finite was ever recorded. Kept separate from
    /// `best` so that the JSON report never renders the `INFINITY`
    /// sentinel as the invalid token `inf`.
    best_finite: Option<f64>,
    opts: MonitorOptions,
}

impl ResidualMonitor {
    /// Monitor with default options.
    #[must_use]
    pub fn new() -> Self {
        Self::with_options(MonitorOptions::default())
    }

    /// Monitor with explicit divergence tuning.
    #[must_use]
    pub fn with_options(opts: MonitorOptions) -> Self {
        Self {
            history: Vec::new(),
            best: f64::INFINITY,
            best_finite: None,
            opts,
        }
    }

    /// Record one residual; `Err` on NaN/Inf or detected divergence.
    ///
    /// # Errors
    /// [`SolverError::NonFinite`] when the residual is NaN/Inf (with `i` =
    /// iteration index), [`SolverError::Diverged`] when the growth criteria
    /// trip.
    pub fn record(&mut self, residual: f64) -> Result<(), SolverError> {
        let iter = self.history.len();
        self.history.push(residual);
        if residual.is_finite() {
            self.best_finite = Some(match self.best_finite {
                Some(b) => b.min(residual),
                None => residual,
            });
        }
        if !residual.is_finite() {
            return Err(SolverError::NonFinite {
                field: "residual",
                i: iter,
                j: 0,
            });
        }
        if iter >= self.opts.grace {
            if residual > self.opts.growth_ratio * self.best {
                return Err(SolverError::Diverged { iter, residual });
            }
            let w = self.opts.window;
            if iter + 1 >= w.max(2) {
                let window = &self.history[iter + 1 - w..=iter];
                let monotone = window.windows(2).all(|p| p[1] >= p[0]);
                if monotone && residual > self.opts.window_growth * window[0].max(1e-300) {
                    return Err(SolverError::Diverged { iter, residual });
                }
            }
            // `best` deliberately excludes the grace window: impulsive
            // starts from uniform flow begin at a near-zero residual that
            // would make legitimate transient growth look like divergence.
            self.best = self.best.min(residual);
        }
        Ok(())
    }

    /// Residual history so far (index = iteration).
    #[must_use]
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Consume the monitor, returning the history.
    #[must_use]
    pub fn into_history(self) -> Vec<f64> {
        self.history
    }

    /// Iterations recorded.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.history.len()
    }

    /// Best (smallest) finite residual seen, or `None` when no finite
    /// residual was ever recorded.
    ///
    /// Previously this returned the raw `f64::INFINITY` sentinel for an
    /// empty history, which downstream JSON writers rendered as the
    /// invalid token `inf`; the `Option` makes "never recorded" a state
    /// the type system forces callers to handle (reports emit `null`).
    #[must_use]
    pub fn best(&self) -> Option<f64> {
        self.best_finite
    }
}

impl Default for ResidualMonitor {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-run telemetry sink: wall-clock phases, residual histories, and the
/// counter deltas attributable to the run.
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    started: Instant,
    counters_at_start: CounterSnapshot,
    phases: Vec<(String, f64)>,
    histories: Vec<(String, Vec<f64>)>,
    audits: Vec<AuditFinding>,
}

impl RunTelemetry {
    /// Start a telemetry scope now (snapshots the global counters).
    #[must_use]
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            counters_at_start: CounterSnapshot::take(),
            phases: Vec::new(),
            histories: Vec::new(),
            audits: Vec::new(),
        }
    }

    /// Time a phase with the monotonic clock and record it.
    pub fn time_phase<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        self.add_phase_secs(name, t0.elapsed().as_secs_f64());
        out
    }

    /// Record a phase timing measured externally (accumulates on repeat).
    pub fn add_phase_secs(&mut self, name: &str, secs: f64) {
        if let Some(p) = self.phases.iter_mut().find(|(n, _)| n == name) {
            p.1 += secs;
        } else {
            self.phases.push((name.to_string(), secs));
        }
    }

    /// Attach a residual convergence history (replaces an existing history
    /// of the same name — reruns overwrite, they don't append).
    pub fn record_history(&mut self, name: &str, history: Vec<f64>) {
        if let Some(h) = self.histories.iter_mut().find(|(n, _)| n == name) {
            h.1 = history;
        } else {
            self.histories.push((name.to_string(), history));
        }
    }

    /// Record a physics-audit finding (appends; a run accumulates findings
    /// across its audit cadence).
    pub fn record_audit(&mut self, finding: AuditFinding) {
        self.audits.push(finding);
    }

    /// Recorded audit findings, in the order the auditors produced them.
    #[must_use]
    pub fn audits(&self) -> &[AuditFinding] {
        &self.audits
    }

    /// Worst severity among recorded audit findings (`None` when no audit
    /// has run).
    #[must_use]
    pub fn worst_audit_severity(&self) -> Option<AuditSeverity> {
        self.audits.iter().map(|a| a.severity).max()
    }

    /// Counter deltas accumulated since this scope started.
    #[must_use]
    pub fn counters(&self) -> CounterSnapshot {
        CounterSnapshot::take().delta_since(&self.counters_at_start)
    }

    /// Wall-clock seconds since the scope started (monotonic).
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Recorded `(name, seconds)` phases.
    #[must_use]
    pub fn phases(&self) -> &[(String, f64)] {
        &self.phases
    }

    /// Recorded `(name, residuals)` histories.
    #[must_use]
    pub fn histories(&self) -> &[(String, Vec<f64>)] {
        &self.histories
    }
}

impl Default for RunTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_deltas() {
        let before = CounterSnapshot::take();
        counters::add(Counter::TridiagSolves, 3);
        counters::add(Counter::NewtonIterations, 7);
        let delta = CounterSnapshot::take().delta_since(&before);
        assert!(delta.get(Counter::TridiagSolves) >= 3);
        assert!(delta.get(Counter::NewtonIterations) >= 7);
        assert_eq!(delta.iter().count(), counters::N_COUNTERS);
    }

    #[test]
    fn telemetry_scope_counts_only_this_thread() {
        // Two threads, each with its own scope and a distinct add pattern:
        // each scope must see exactly its own thread's counts no matter
        // how the adds interleave — the property the global atomics cannot
        // provide and the sweep engine's per-case attribution relies on.
        let handles: Vec<_> = (1..=2u64)
            .map(|k| {
                std::thread::spawn(move || {
                    let scope = TelemetryScope::begin();
                    for _ in 0..10 * k {
                        counters::add(Counter::ChemistrySubsteps, 1);
                    }
                    counters::add(Counter::SpectrumPoints, 100 * k);
                    scope.thread_delta()
                })
            })
            .collect();
        let deltas: Vec<CounterSnapshot> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (k, delta) in (1..=2u64).zip(&deltas) {
            assert_eq!(delta.get(Counter::ChemistrySubsteps), 10 * k);
            assert_eq!(delta.get(Counter::SpectrumPoints), 100 * k);
            assert_eq!(delta.get(Counter::NewtonSolves), 0);
        }
    }

    #[test]
    fn telemetry_scopes_nest_on_one_thread() {
        std::thread::spawn(|| {
            let outer = TelemetryScope::begin();
            counters::add(Counter::TridiagSolves, 2);
            let inner = TelemetryScope::begin();
            counters::add(Counter::TridiagSolves, 5);
            assert_eq!(inner.thread_delta().get(Counter::TridiagSolves), 5);
            assert_eq!(outer.thread_delta().get(Counter::TridiagSolves), 7);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn monitor_accepts_converging_history() {
        let mut m = ResidualMonitor::new();
        for k in 0..500 {
            let r = 1.0 * (0.99_f64).powi(k);
            m.record(r).unwrap();
        }
        assert_eq!(m.iterations(), 500);
        assert!(m.best().expect("finite residuals recorded") < 1e-2);
    }

    #[test]
    fn monitor_best_is_none_until_a_finite_residual_arrives() {
        let mut m = ResidualMonitor::new();
        assert_eq!(m.best(), None, "fresh monitor has no best residual");
        let _ = m.record(f64::INFINITY);
        assert_eq!(m.best(), None, "Inf must not become the reported best");
        let mut m2 = ResidualMonitor::new();
        m2.record(0.25).unwrap();
        assert_eq!(m2.best(), Some(0.25));
    }

    #[test]
    fn monitor_tolerates_startup_transient() {
        // Residual grows 100x while the flow forms, then converges — the
        // grace window must keep this from tripping as divergence.
        let mut m = ResidualMonitor::new();
        for k in 0..40 {
            m.record(1e-3 * 1.2_f64.powi(k)).unwrap();
        }
        for k in 0..200 {
            m.record(0.15 * 0.95_f64.powi(k)).unwrap();
        }
    }

    #[test]
    fn monitor_detects_nan() {
        let mut m = ResidualMonitor::new();
        m.record(1.0).unwrap();
        let err = m.record(f64::NAN).unwrap_err();
        assert!(matches!(
            err,
            SolverError::NonFinite {
                field: "residual",
                i: 1,
                j: 0
            }
        ));
    }

    #[test]
    fn monitor_detects_explosive_growth() {
        let mut m = ResidualMonitor::with_options(MonitorOptions {
            grace: 10,
            ..MonitorOptions::default()
        });
        let mut r = 1e-2;
        let mut tripped = None;
        for iter in 0..200 {
            r *= 2.0;
            if let Err(e) = m.record(r) {
                tripped = Some((iter, e));
                break;
            }
        }
        let (iter, err) = tripped.expect("divergence not detected");
        assert!(iter < 60, "detection too slow: iter {iter}");
        assert!(matches!(err, SolverError::Diverged { .. }));
    }

    #[test]
    fn solver_error_display_preserves_strings() {
        let e: SolverError = String::from("freestream state: bad T").into();
        assert_eq!(e.to_string(), "freestream state: bad T");
        let d = SolverError::Diverged {
            iter: 42,
            residual: 3.0e9,
        };
        assert!(d.to_string().contains("iteration 42"));
        let nf = SolverError::NonFinite {
            field: "rho",
            i: 3,
            j: 9,
        };
        assert_eq!(nf.to_string(), "non-finite rho at (3, 9)");
    }

    #[test]
    fn nonfinite_residual_display_names_the_iteration() {
        // Residual-level NaN detection stores the iteration in `i`; the
        // message must say so rather than printing a bogus cell pair.
        let mut m = ResidualMonitor::new();
        m.record(1.0).unwrap();
        m.record(0.5).unwrap();
        let err = m.record(f64::NAN).unwrap_err();
        assert_eq!(err.to_string(), "non-finite residual at iteration 2");
    }

    #[test]
    fn audit_failed_display_carries_measurement() {
        let e = SolverError::AuditFailed {
            audit: "mass_flux_budget".to_string(),
            value: 0.5,
            threshold: 0.1,
        };
        let msg = e.to_string();
        assert!(msg.contains("mass_flux_budget"), "{msg}");
        assert!(msg.contains("5.000e-1"), "{msg}");
        assert!(msg.contains("1.000e-1"), "{msg}");
    }

    #[test]
    fn telemetry_accumulates_audit_findings() {
        let mut t = RunTelemetry::new();
        assert_eq!(t.worst_audit_severity(), None);
        t.record_audit(AuditFinding {
            audit: "positivity",
            severity: AuditSeverity::Pass,
            value: 0.0,
            threshold: 0.0,
            step: 10,
            detail: "all densities positive".to_string(),
        });
        t.record_audit(AuditFinding {
            audit: "mass_flux_budget",
            severity: AuditSeverity::Warn,
            value: 3e-3,
            threshold: 1e-3,
            step: 10,
            detail: "net/gross mass imbalance".to_string(),
        });
        assert_eq!(t.audits().len(), 2);
        assert_eq!(t.worst_audit_severity(), Some(AuditSeverity::Warn));
        let shown = t.audits()[1].to_string();
        assert!(shown.contains("[warn]"), "{shown}");
        assert!(shown.contains("mass_flux_budget"), "{shown}");
    }

    #[test]
    fn telemetry_records_phases_and_histories() {
        let mut t = RunTelemetry::new();
        let x = t.time_phase("setup", || 41 + 1);
        assert_eq!(x, 42);
        t.add_phase_secs("setup", 0.0);
        t.record_history("res", vec![1.0, 0.5]);
        t.record_history("res", vec![1.0, 0.5, 0.25]);
        assert_eq!(t.phases().len(), 1);
        assert_eq!(t.histories().len(), 1);
        assert_eq!(t.histories()[0].1.len(), 3);
        assert!(t.elapsed_secs() >= 0.0);
    }
}
