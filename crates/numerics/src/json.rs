//! Minimal recursive-descent JSON parser and writer primitives.
//!
//! The workspace emits all of its machine-readable artifacts (run reports,
//! perf snapshots, sweep result streams, Chrome traces) with hand-rolled
//! writers; this is the matching reader, used by the perf-snapshot
//! comparator, the sweep resume path, and the report regression tests. It
//! supports the full JSON grammar the writers produce — objects, arrays,
//! strings with escapes, numbers, booleans, `null` — and nothing more
//! exotic (no comments, no trailing commas, no NaN literals; non-finite
//! floats are written as `null`).
//!
//! The writer side is deliberately tiny: [`write_string`] and [`write_f64`]
//! are the two primitives every hand-rolled emitter in the workspace needs
//! to agree on (escaping, and the NaN/Inf → `null` convention the parser
//! round-trips).

use std::collections::BTreeMap;
use std::fmt;

/// Serialize a string as a JSON string literal with minimal escaping
/// (quotes, backslashes, and control characters).
#[must_use]
pub fn write_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialize a float: finite values as shortest-roundtrip decimals,
/// NaN/Inf (illegal in JSON) as `null` — the convention [`parse`] maps
/// back to [`Value::Null`].
#[must_use]
pub fn write_f64(v: f64) -> String {
    if v.is_finite() {
        // `{}` always prints positionally ("0.0000000000015"); prefer the
        // exponent form whenever it is strictly shorter (both are
        // shortest-roundtrip digit-wise, and JSON accepts either).
        let plain = format!("{v}");
        let exp = format!("{v:e}");
        if exp.len() < plain.len() {
            exp
        } else {
            plain
        }
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also how the writers encode NaN/Inf).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, like JavaScript).
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is not preserved (sorted map).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` on anything else or missing key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The number as `f64` if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The string slice if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The member map if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True when this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A parse failure with its byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
/// Returns a [`ParseError`] with a byte offset on any grammar violation.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad hex in \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5e3, null, true, "x\ny"], "b": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2500.0));
        assert!(a[2].is_null());
        assert_eq!(a[3], Value::Bool(true));
        assert_eq!(a[4].as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().as_object().unwrap().len(), 0);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("nul").is_err());
        let err = parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn writer_primitives_roundtrip_through_parse() {
        let s = write_string("a \"quoted\"\nline\t\u{1}");
        let v = parse(&s).unwrap();
        assert_eq!(v.as_str(), Some("a \"quoted\"\nline\t\u{1}"));
        assert_eq!(write_f64(1.5e-12), "1.5e-12");
        assert_eq!(write_f64(f64::NAN), "null");
        assert_eq!(write_f64(f64::INFINITY), "null");
        let doc = format!("[{}, {}]", write_f64(0.25), write_f64(f64::NAN));
        let arr = parse(&doc).unwrap();
        assert_eq!(arr.as_array().unwrap()[0].as_f64(), Some(0.25));
        assert!(arr.as_array().unwrap()[1].is_null());
    }

    #[test]
    fn roundtrips_report_style_output() {
        let doc = "{\n  \"x\": 1e-12,\n  \"y\": [1, 0.5, null],\n  \"s\": \"q\\\"n\\\"\"\n}\n";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1e-12));
        assert!(v.get("y").unwrap().as_array().unwrap()[2].is_null());
        assert_eq!(v.get("s").unwrap().as_str(), Some("q\"n\""));
    }
}
