//! Interpolation: linear, monotone cubic (Fritsch-Carlson), and bilinear
//! tables.
//!
//! The equilibrium-air EOS table in `aerothermo-gas` and the atmosphere
//! models both interpolate tabulated data; monotone cubic keeps thermodynamic
//! derivatives (sound speed!) from ringing between knots.

/// Locate the interval index `i` with `xs[i] <= x < xs[i+1]`, clamped to the
/// valid range. `xs` must be strictly increasing with at least 2 entries.
///
/// # Panics
/// Panics when fewer than 2 knots are given — the same hard precondition
/// [`lerp`] asserts (a `debug_assert!` here would index out of bounds or
/// return garbage in release builds). Callers on a `Result` path should use
/// [`try_bracket`] instead.
#[must_use]
pub fn bracket(xs: &[f64], x: f64) -> usize {
    assert!(xs.len() >= 2, "need at least two points");
    if x <= xs[0] {
        return 0;
    }
    if x >= xs[xs.len() - 2] {
        return xs.len() - 2;
    }
    // Binary search.
    let mut lo = 0usize;
    let mut hi = xs.len() - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if xs[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Fallible [`bracket`]: `None` when the table is degenerate (fewer than 2
/// knots), for callers that can surface a table-lookup failure as an error
/// instead of panicking.
#[must_use]
pub fn try_bracket(xs: &[f64], x: f64) -> Option<usize> {
    if xs.len() < 2 {
        return None;
    }
    Some(bracket(xs, x))
}

/// Piecewise-linear interpolation with constant extrapolation outside the
/// table.
///
/// # Panics
/// Panics when `xs`/`ys` lengths differ or fewer than 2 points are given.
#[must_use]
pub fn lerp(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points");
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    let i = bracket(xs, x);
    let t = (x - xs[i]) / (xs[i + 1] - xs[i]);
    ys[i] + t * (ys[i + 1] - ys[i])
}

/// Piecewise-linear interpolation with *linear* extrapolation beyond the
/// endpoints (used for atmosphere tails).
#[must_use]
pub fn lerp_extrap(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points");
    let i = bracket(xs, x);
    let t = (x - xs[i]) / (xs[i + 1] - xs[i]);
    ys[i] + t * (ys[i + 1] - ys[i])
}

/// Monotone cubic Hermite interpolant (Fritsch-Carlson slopes).
///
/// Preserves monotonicity of the data — no overshoot between knots — while
/// being C¹. Ideal for thermodynamic property tables.
#[derive(Debug, Clone)]
pub struct MonotoneCubic {
    xs: Vec<f64>,
    ys: Vec<f64>,
    ms: Vec<f64>, // node slopes
}

impl MonotoneCubic {
    /// Build the interpolant. `xs` must be strictly increasing and at least
    /// 2 points long.
    ///
    /// # Panics
    /// Panics on length mismatch, too-few points, or non-increasing `xs`.
    #[must_use]
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Self {
        assert_eq!(xs.len(), ys.len());
        let n = xs.len();
        assert!(n >= 2, "need at least two points");
        for w in xs.windows(2) {
            assert!(w[1] > w[0], "xs must be strictly increasing");
        }
        // Secant slopes.
        let d: Vec<f64> = (0..n - 1)
            .map(|i| (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i]))
            .collect();
        let mut ms = vec![0.0; n];
        ms[0] = d[0];
        ms[n - 1] = d[n - 2];
        for i in 1..n - 1 {
            ms[i] = if d[i - 1] * d[i] <= 0.0 {
                0.0
            } else {
                // Harmonic-mean-like average keeps monotonicity.
                let w1 = 2.0 * (xs[i + 1] - xs[i]) + (xs[i] - xs[i - 1]);
                let w2 = (xs[i + 1] - xs[i]) + 2.0 * (xs[i] - xs[i - 1]);
                (w1 + w2) / (w1 / d[i - 1] + w2 / d[i])
            };
        }
        // Fritsch-Carlson limiting.
        for i in 0..n - 1 {
            if d[i] == 0.0 {
                ms[i] = 0.0;
                ms[i + 1] = 0.0;
            } else {
                let a = ms[i] / d[i];
                let b = ms[i + 1] / d[i];
                let s = (a * a + b * b).sqrt();
                if s > 3.0 {
                    ms[i] = 3.0 * d[i] * a / s;
                    ms[i + 1] = 3.0 * d[i] * b / s;
                }
            }
        }
        Self { xs, ys, ms }
    }

    /// Evaluate at `x` (clamped extrapolation beyond the knots).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let i = bracket(&self.xs, x);
        let h = self.xs[i + 1] - self.xs[i];
        let t = (x - self.xs[i]) / h;
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[i] + h10 * h * self.ms[i] + h01 * self.ys[i + 1] + h11 * h * self.ms[i + 1]
    }

    /// Derivative dy/dx at `x` (zero outside the knots).
    #[must_use]
    pub fn deriv(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] || x >= self.xs[n - 1] {
            return 0.0;
        }
        let i = bracket(&self.xs, x);
        let h = self.xs[i + 1] - self.xs[i];
        let t = (x - self.xs[i]) / h;
        let t2 = t * t;
        let dh00 = (6.0 * t2 - 6.0 * t) / h;
        let dh10 = 3.0 * t2 - 4.0 * t + 1.0;
        let dh01 = (-6.0 * t2 + 6.0 * t) / h;
        let dh11 = 3.0 * t2 - 2.0 * t;
        dh00 * self.ys[i] + dh10 * self.ms[i] + dh01 * self.ys[i + 1] + dh11 * self.ms[i + 1]
    }
}

/// A rectangular bilinear lookup table `z(x, y)` on strictly increasing axes,
/// with clamped evaluation outside the rectangle.
#[derive(Debug, Clone)]
pub struct BilinearTable {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Row-major: `z[i * ys.len() + j]` is the value at `(xs[i], ys[j])`.
    z: Vec<f64>,
}

impl BilinearTable {
    /// Build from axes and row-major values.
    ///
    /// # Panics
    /// Panics when dimensions are inconsistent or axes are not strictly
    /// increasing.
    #[must_use]
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, z: Vec<f64>) -> Self {
        assert!(xs.len() >= 2 && ys.len() >= 2);
        assert_eq!(z.len(), xs.len() * ys.len());
        for w in xs.windows(2) {
            assert!(w[1] > w[0], "x axis must increase");
        }
        for w in ys.windows(2) {
            assert!(w[1] > w[0], "y axis must increase");
        }
        Self { xs, ys, z }
    }

    /// X axis knots.
    #[must_use]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Y axis knots.
    #[must_use]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Evaluate with bilinear interpolation, clamped to the table rectangle.
    #[must_use]
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let nx = self.xs.len();
        let ny = self.ys.len();
        let xc = x.clamp(self.xs[0], self.xs[nx - 1]);
        let yc = y.clamp(self.ys[0], self.ys[ny - 1]);
        let i = bracket(&self.xs, xc);
        let j = bracket(&self.ys, yc);
        let tx = (xc - self.xs[i]) / (self.xs[i + 1] - self.xs[i]);
        let ty = (yc - self.ys[j]) / (self.ys[j + 1] - self.ys[j]);
        let z00 = self.z[i * ny + j];
        let z01 = self.z[i * ny + j + 1];
        let z10 = self.z[(i + 1) * ny + j];
        let z11 = self.z[(i + 1) * ny + j + 1];
        z00 * (1.0 - tx) * (1.0 - ty)
            + z10 * tx * (1.0 - ty)
            + z01 * (1.0 - tx) * ty
            + z11 * tx * ty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bracket_edges() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(bracket(&xs, -1.0), 0);
        assert_eq!(bracket(&xs, 0.5), 0);
        assert_eq!(bracket(&xs, 1.0), 1);
        assert_eq!(bracket(&xs, 2.5), 2);
        assert_eq!(bracket(&xs, 99.0), 2);
    }

    #[test]
    #[should_panic(expected = "need at least two points")]
    fn bracket_rejects_degenerate_table_in_release_too() {
        let _ = bracket(&[1.0], 0.5);
    }

    #[test]
    fn try_bracket_surfaces_degenerate_tables() {
        assert_eq!(try_bracket(&[], 0.5), None);
        assert_eq!(try_bracket(&[1.0], 0.5), None);
        let xs = [0.0, 1.0, 2.0, 3.0];
        for x in [-1.0, 0.5, 1.0, 2.5, 99.0] {
            assert_eq!(try_bracket(&xs, x), Some(bracket(&xs, x)));
        }
    }

    #[test]
    fn lerp_exact_on_line() {
        let xs = [0.0, 1.0, 3.0];
        let ys = [0.0, 2.0, 6.0];
        assert!((lerp(&xs, &ys, 0.5) - 1.0).abs() < 1e-14);
        assert!((lerp(&xs, &ys, 2.0) - 4.0).abs() < 1e-14);
        // clamped
        assert_eq!(lerp(&xs, &ys, -5.0), 0.0);
        assert_eq!(lerp(&xs, &ys, 9.0), 6.0);
        // extrapolating variant keeps the slope
        assert!((lerp_extrap(&xs, &ys, 4.0) - 8.0).abs() < 1e-13);
    }

    #[test]
    fn monotone_cubic_interpolates_knots() {
        let xs = vec![0.0, 1.0, 2.0, 4.0];
        let ys = vec![1.0, 3.0, 3.5, 7.0];
        let mc = MonotoneCubic::new(xs.clone(), ys.clone());
        for (x, y) in xs.iter().zip(&ys) {
            assert!((mc.eval(*x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn monotone_cubic_no_overshoot() {
        // Step-like data: interpolant must stay within [0, 1].
        let xs = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = vec![0.0, 0.0, 0.5, 1.0, 1.0];
        let mc = MonotoneCubic::new(xs, ys);
        let mut x = 0.0;
        while x <= 4.0 {
            let v = mc.eval(x);
            assert!((-1e-12..=1.0 + 1e-12).contains(&v), "overshoot at {x}: {v}");
            x += 0.01;
        }
    }

    #[test]
    fn monotone_cubic_derivative_fd() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.3).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x * 0.7).exp()).collect();
        let mc = MonotoneCubic::new(xs, ys);
        let x = 2.13;
        let d_an = mc.deriv(x);
        let h = 1e-6;
        let d_fd = (mc.eval(x + h) - mc.eval(x - h)) / (2.0 * h);
        assert!((d_an - d_fd).abs() < 1e-5 * d_fd.abs().max(1.0));
    }

    #[test]
    fn bilinear_reproduces_plane() {
        let xs = vec![0.0, 1.0, 2.0];
        let ys = vec![0.0, 2.0];
        // z = 3x + 0.5y + 1
        let mut z = vec![0.0; 6];
        for (i, &x) in xs.iter().enumerate() {
            for (j, &y) in ys.iter().enumerate() {
                z[i * 2 + j] = 3.0 * x + 0.5 * y + 1.0;
            }
        }
        let t = BilinearTable::new(xs, ys, z);
        assert!((t.eval(0.7, 1.1) - (3.0 * 0.7 + 0.55 + 1.0)).abs() < 1e-13);
        // clamps
        assert!((t.eval(-1.0, -1.0) - 1.0).abs() < 1e-13);
    }
}
