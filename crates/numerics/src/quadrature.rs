//! Numerical quadrature: trapezoid (on samples), Simpson, and fixed-order
//! Gauss-Legendre.
//!
//! Radiative-flux integrals over wavelength and heating-load integrals over
//! trajectories are plain sampled-data integrals (trapezoid); the band-shape
//! and partition-function integrals use Gauss-Legendre.

/// Trapezoid rule over sampled data `(xs, ys)`.
///
/// # Panics
/// Panics when lengths differ.
#[must_use]
pub fn trapz(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let mut s = 0.0;
    for i in 1..xs.len() {
        s += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
    }
    s
}

/// Composite Simpson rule for `f` on `[a, b]` with `n` (even, ≥2) intervals.
///
/// # Panics
/// Panics when `n` is odd or zero.
#[must_use]
pub fn simpson(mut f: impl FnMut(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "simpson needs an even interval count"
    );
    let h = (b - a) / n as f64;
    let mut s = f(a) + f(b);
    for i in 1..n {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        s += w * f(a + i as f64 * h);
    }
    s * h / 3.0
}

// 10-point Gauss-Legendre nodes/weights on [-1, 1].
const GL10_X: [f64; 5] = [
    0.148_874_338_981_631_21,
    0.433_395_394_129_247_2,
    0.679_409_568_299_024_4,
    0.865_063_366_688_984_5,
    0.973_906_528_517_171_7,
];
const GL10_W: [f64; 5] = [
    0.295_524_224_714_752_87,
    0.269_266_719_309_996_35,
    0.219_086_362_515_982_04,
    0.149_451_349_150_580_6,
    0.066_671_344_308_688_14,
];

/// 10-point Gauss-Legendre quadrature of `f` on `[a, b]` — exact for
/// polynomials of degree ≤ 19.
#[must_use]
pub fn gauss10(mut f: impl FnMut(f64) -> f64, a: f64, b: f64) -> f64 {
    let xm = 0.5 * (a + b);
    let xr = 0.5 * (b - a);
    let mut s = 0.0;
    for k in 0..5 {
        let dx = xr * GL10_X[k];
        s += GL10_W[k] * (f(xm + dx) + f(xm - dx));
    }
    s * xr
}

/// Composite 10-point Gauss-Legendre over `n` panels.
#[must_use]
pub fn gauss10_composite(mut f: impl FnMut(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    let h = (b - a) / n.max(1) as f64;
    (0..n.max(1))
        .map(|i| {
            let x0 = a + i as f64 * h;
            gauss10(&mut f, x0, x0 + h)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapz_linear_exact() {
        let xs: Vec<f64> = (0..11).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((trapz(&xs, &ys) - 2.0).abs() < 1e-14);
    }

    #[test]
    fn trapz_nonuniform() {
        let xs = [0.0, 0.5, 2.0];
        let ys = [1.0, 1.0, 1.0];
        assert!((trapz(&xs, &ys) - 2.0).abs() < 1e-14);
    }

    #[test]
    fn simpson_cubic_exact() {
        // Simpson is exact for cubics.
        let v = simpson(|x| x * x * x - 2.0 * x + 1.0, 0.0, 2.0, 2);
        let exact = 4.0 - 4.0 + 2.0;
        assert!((v - exact).abs() < 1e-13);
    }

    #[test]
    fn gauss10_high_degree_polynomial() {
        // x^18 on [0,1] = 1/19 — inside the exactness degree.
        let v = gauss10(|x| x.powi(18), 0.0, 1.0);
        assert!((v - 1.0 / 19.0).abs() < 1e-14);
    }

    #[test]
    fn gauss10_composite_oscillatory() {
        let v = gauss10_composite(|x| x.sin(), 0.0, std::f64::consts::PI, 4);
        assert!((v - 2.0).abs() < 1e-12);
    }
}
