//! Dense row-major multidimensional fields for structured-grid data.
//!
//! `Field2<T>` stores an `ni × nj` array contiguously with `j` fastest
//! (row-major, C order): element `(i, j)` lives at `i * nj + j`. This layout
//! means a fixed-`i` "grid line" is contiguous, which is what the line-implicit
//! solvers and `rayon::par_chunks_mut` over lines want.

use std::ops::{Index, IndexMut};

/// A dense 2-D field with row-major layout.
#[derive(Clone, Debug, PartialEq)]
pub struct Field2<T> {
    ni: usize,
    nj: usize,
    data: Vec<T>,
}

impl<T: Clone> Field2<T> {
    /// Create an `ni × nj` field filled with `value`.
    ///
    /// # Panics
    /// Panics if `ni * nj` overflows.
    #[must_use]
    pub fn new(ni: usize, nj: usize, value: T) -> Self {
        let len = ni.checked_mul(nj).expect("Field2 size overflow");
        Self {
            ni,
            nj,
            data: vec![value; len],
        }
    }

    /// Build a field by evaluating `f(i, j)` at every point.
    pub fn from_fn(ni: usize, nj: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(ni * nj);
        for i in 0..ni {
            for j in 0..nj {
                data.push(f(i, j));
            }
        }
        Self { ni, nj, data }
    }
}

impl<T> Field2<T> {
    /// Number of points along the first (slow) axis.
    #[must_use]
    pub fn ni(&self) -> usize {
        self.ni
    }

    /// Number of points along the second (fast) axis.
    #[must_use]
    pub fn nj(&self) -> usize {
        self.nj
    }

    /// `(ni, nj)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.ni, self.nj)
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the field holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Contiguous slice of the whole field.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable contiguous slice of the whole field.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// The contiguous line at fixed `i` (all `j`).
    ///
    /// # Panics
    /// Panics if `i >= ni`.
    #[must_use]
    pub fn line(&self, i: usize) -> &[T] {
        assert!(i < self.ni, "line index {i} out of range {}", self.ni);
        &self.data[i * self.nj..(i + 1) * self.nj]
    }

    /// Mutable contiguous line at fixed `i`.
    ///
    /// # Panics
    /// Panics if `i >= ni`.
    pub fn line_mut(&mut self, i: usize) -> &mut [T] {
        assert!(i < self.ni, "line index {i} out of range {}", self.ni);
        &mut self.data[i * self.nj..(i + 1) * self.nj]
    }

    /// Iterator over `(i, line)` pairs.
    pub fn lines(&self) -> impl Iterator<Item = (usize, &[T])> {
        self.data.chunks_exact(self.nj.max(1)).enumerate()
    }

    /// Mutable iterator over lines; pairs naturally with
    /// `rayon::prelude::ParallelSliceMut::par_chunks_exact_mut` via
    /// [`Field2::as_mut_slice`].
    pub fn lines_mut(&mut self) -> impl Iterator<Item = (usize, &mut [T])> {
        self.data.chunks_exact_mut(self.nj.max(1)).enumerate()
    }
}

impl Field2<f64> {
    /// An `ni × nj` field of zeros.
    #[must_use]
    pub fn zeros(ni: usize, nj: usize) -> Self {
        Self::new(ni, nj, 0.0)
    }

    /// Maximum absolute value over the field (0 for an empty field).
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// L2 norm of the field treated as a flat vector.
    #[must_use]
    pub fn norm_l2(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl<T> Index<(usize, usize)> for Field2<T> {
    type Output = T;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.ni && j < self.nj, "index ({i},{j}) out of range");
        &self.data[i * self.nj + j]
    }
}

impl<T> IndexMut<(usize, usize)> for Field2<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.ni && j < self.nj, "index ({i},{j}) out of range");
        &mut self.data[i * self.nj + j]
    }
}

/// A dense 3-D field, row-major with `k` fastest: `(i, j, k)` lives at
/// `(i * nj + j) * nk + k`. Used for per-cell state vectors (e.g. `nk` =
/// number of conserved variables).
#[derive(Clone, Debug, PartialEq)]
pub struct Field3<T> {
    ni: usize,
    nj: usize,
    nk: usize,
    data: Vec<T>,
}

impl<T: Clone> Field3<T> {
    /// Create an `ni × nj × nk` field filled with `value`.
    ///
    /// # Panics
    /// Panics if the total size overflows.
    #[must_use]
    pub fn new(ni: usize, nj: usize, nk: usize, value: T) -> Self {
        let len = ni
            .checked_mul(nj)
            .and_then(|x| x.checked_mul(nk))
            .expect("Field3 size overflow");
        Self {
            ni,
            nj,
            nk,
            data: vec![value; len],
        }
    }
}

impl<T> Field3<T> {
    /// `(ni, nj, nk)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.ni, self.nj, self.nk)
    }

    /// Number of points along the first axis.
    #[must_use]
    pub fn ni(&self) -> usize {
        self.ni
    }

    /// Number of points along the second axis.
    #[must_use]
    pub fn nj(&self) -> usize {
        self.nj
    }

    /// Number of points along the third (fastest) axis.
    #[must_use]
    pub fn nk(&self) -> usize {
        self.nk
    }

    /// The contiguous `nk`-vector at `(i, j)`.
    #[must_use]
    pub fn vector(&self, i: usize, j: usize) -> &[T] {
        assert!(i < self.ni && j < self.nj, "vector ({i},{j}) out of range");
        let base = (i * self.nj + j) * self.nk;
        &self.data[base..base + self.nk]
    }

    /// Mutable contiguous `nk`-vector at `(i, j)`.
    pub fn vector_mut(&mut self, i: usize, j: usize) -> &mut [T] {
        assert!(i < self.ni && j < self.nj, "vector ({i},{j}) out of range");
        let base = (i * self.nj + j) * self.nk;
        &mut self.data[base..base + self.nk]
    }

    /// Contiguous slice of the whole field.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable contiguous slice of the whole field.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl Field3<f64> {
    /// An all-zero field.
    #[must_use]
    pub fn zeros(ni: usize, nj: usize, nk: usize) -> Self {
        Self::new(ni, nj, nk, 0.0)
    }
}

impl<T> Index<(usize, usize, usize)> for Field3<T> {
    type Output = T;

    #[inline]
    fn index(&self, (i, j, k): (usize, usize, usize)) -> &T {
        debug_assert!(
            i < self.ni && j < self.nj && k < self.nk,
            "index ({i},{j},{k}) out of range"
        );
        &self.data[(i * self.nj + j) * self.nk + k]
    }
}

impl<T> IndexMut<(usize, usize, usize)> for Field3<T> {
    #[inline]
    fn index_mut(&mut self, (i, j, k): (usize, usize, usize)) -> &mut T {
        debug_assert!(
            i < self.ni && j < self.nj && k < self.nk,
            "index ({i},{j},{k}) out of range"
        );
        &mut self.data[(i * self.nj + j) * self.nk + k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field2_roundtrip() {
        let mut f = Field2::zeros(3, 4);
        f[(2, 3)] = 7.5;
        f[(0, 0)] = -1.0;
        assert_eq!(f[(2, 3)], 7.5);
        assert_eq!(f[(0, 0)], -1.0);
        assert_eq!(f.shape(), (3, 4));
        assert_eq!(f.len(), 12);
    }

    #[test]
    fn field2_line_is_contiguous() {
        let f = Field2::from_fn(3, 4, |i, j| (i * 10 + j) as f64);
        assert_eq!(f.line(1), &[10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn field2_lines_mut_cover_all() {
        let mut f = Field2::zeros(5, 3);
        for (i, line) in f.lines_mut() {
            for v in line.iter_mut() {
                *v = i as f64;
            }
        }
        assert_eq!(f[(4, 2)], 4.0);
        assert_eq!(f[(0, 1)], 0.0);
    }

    #[test]
    fn field2_norms() {
        let f = Field2::from_fn(1, 3, |_, j| [3.0, -4.0, 0.0][j]);
        assert!((f.norm_l2() - 5.0).abs() < 1e-14);
        assert_eq!(f.max_abs(), 4.0);
    }

    #[test]
    fn field3_vector_access() {
        let mut f = Field3::zeros(2, 2, 3);
        f.vector_mut(1, 0).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(f.vector(1, 0), &[1.0, 2.0, 3.0]);
        assert_eq!(f[(1, 0, 2)], 3.0);
        assert_eq!(f[(0, 0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn field2_line_out_of_range_panics() {
        let f = Field2::zeros(2, 2);
        let _ = f.line(2);
    }
}
