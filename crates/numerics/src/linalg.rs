//! Small dense linear algebra.
//!
//! The systems solved here are tiny (Newton Jacobians for chemistry and
//! equilibrium: order 5–20), so a straightforward partial-pivot LU is both
//! adequate and cache-friendly. Matrices are row-major `Vec<f64>` with
//! dimension carried separately; for the block-tridiagonal solver in
//! [`crate::tridiag`] the same kernels run on fixed-size blocks.

/// Errors from the dense solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Pivot magnitude fell below the singularity threshold at the given
    /// elimination step.
    Singular(usize),
    /// Inconsistent dimensions were supplied.
    Dimension,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular(k) => write!(f, "matrix singular at pivot {k}"),
            LinalgError::Dimension => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// In-place LU factorization with partial pivoting.
///
/// `a` is an `n × n` row-major matrix; on success it holds L (unit diagonal,
/// below) and U (on and above the diagonal), and `piv` holds the row swaps.
///
/// # Errors
/// [`LinalgError::Singular`] when a pivot is ~0; [`LinalgError::Dimension`]
/// on shape mismatch.
pub fn lu_factor(a: &mut [f64], n: usize, piv: &mut [usize]) -> Result<(), LinalgError> {
    if a.len() != n * n || piv.len() != n {
        return Err(LinalgError::Dimension);
    }
    for (k, p) in piv.iter_mut().enumerate() {
        *p = k;
    }
    for k in 0..n {
        // Partial pivot: largest magnitude in column k at or below row k.
        let mut pk = k;
        let mut pmax = a[k * n + k].abs();
        for i in (k + 1)..n {
            let v = a[i * n + k].abs();
            if v > pmax {
                pmax = v;
                pk = i;
            }
        }
        if pmax < 1e-300 {
            return Err(LinalgError::Singular(k));
        }
        if pk != k {
            for j in 0..n {
                a.swap(k * n + j, pk * n + j);
            }
            piv.swap(k, pk);
        }
        let pivot = a[k * n + k];
        for i in (k + 1)..n {
            let m = a[i * n + k] / pivot;
            a[i * n + k] = m;
            for j in (k + 1)..n {
                a[i * n + j] -= m * a[k * n + j];
            }
        }
    }
    Ok(())
}

/// Solve `L U x = P b` given a factorization from [`lu_factor`]; the solution
/// overwrites `x`, which must enter holding `b`.
///
/// # Errors
/// [`LinalgError::Dimension`] on shape mismatch.
pub fn lu_solve(lu: &[f64], n: usize, piv: &[usize], x: &mut [f64]) -> Result<(), LinalgError> {
    if lu.len() != n * n || piv.len() != n || x.len() != n {
        return Err(LinalgError::Dimension);
    }
    // Apply permutation: x <- P b. piv records, for each k, the original row
    // that ended up in position k, so scatter accordingly.
    let b: Vec<f64> = x.to_vec();
    for k in 0..n {
        x[k] = b[piv[k]];
    }
    // Forward substitution (L has unit diagonal).
    for i in 1..n {
        let mut s = x[i];
        for j in 0..i {
            s -= lu[i * n + j] * x[j];
        }
        x[i] = s;
    }
    // Back substitution.
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in (i + 1)..n {
            s -= lu[i * n + j] * x[j];
        }
        x[i] = s / lu[i * n + i];
    }
    Ok(())
}

/// Convenience: solve `A x = b` for dense `A` (destroyed) and `b` (overwritten
/// with the solution).
///
/// # Errors
/// Propagates factorization/solve failures.
pub fn solve_dense(a: &mut [f64], n: usize, b: &mut [f64]) -> Result<(), LinalgError> {
    let mut piv = vec![0usize; n];
    lu_factor(a, n, &mut piv)?;
    lu_solve(a, n, &piv, b)
}

/// Dense matrix-vector product `y = A x` for row-major `A` (`n × n`).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matvec(a: &[f64], n: usize, x: &[f64], y: &mut [f64]) {
    assert!(a.len() == n * n && x.len() == n && y.len() == n);
    for i in 0..n {
        let row = &a[i * n..(i + 1) * n];
        y[i] = row.iter().zip(x).map(|(aij, xj)| aij * xj).sum();
    }
}

/// Dense matrix-matrix product `C = A B` for row-major `n × n` matrices.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matmul(a: &[f64], b: &[f64], n: usize, c: &mut [f64]) {
    assert!(a.len() == n * n && b.len() == n * n && c.len() == n * n);
    c.fill(0.0);
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
}

/// Invert an `n × n` matrix in place (via LU on a scratch copy).
///
/// # Errors
/// [`LinalgError::Singular`] when the matrix is not invertible.
pub fn invert(a: &mut [f64], n: usize) -> Result<(), LinalgError> {
    let mut lu = a.to_vec();
    let mut piv = vec![0usize; n];
    lu_factor(&mut lu, n, &mut piv)?;
    let mut col = vec![0.0; n];
    for j in 0..n {
        col.fill(0.0);
        col[j] = 1.0;
        lu_solve(&lu, n, &piv, &mut col)?;
        for i in 0..n {
            a[i * n + j] = col[i];
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &[f64], n: usize, x: &[f64], b: &[f64]) -> f64 {
        let mut ax = vec![0.0; n];
        matvec(a, n, x, &mut ax);
        ax.iter()
            .zip(b)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_3x3() {
        let a0 = [2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0];
        let b0 = [8.0, -11.0, -3.0];
        let mut a = a0;
        let mut b = b0;
        solve_dense(&mut a, 3, &mut b).unwrap();
        assert!((b[0] - 2.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
        assert!((b[2] + 1.0).abs() < 1e-12);
        assert!(residual(&a0, 3, &b, &b0) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a0 = [0.0, 1.0, 1.0, 0.0];
        let mut a = a0;
        let mut b = [3.0, 5.0];
        solve_dense(&mut a, 2, &mut b).unwrap();
        assert!((b[0] - 5.0).abs() < 1e-14);
        assert!((b[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn singular_detected() {
        let mut a = [1.0, 2.0, 2.0, 4.0];
        let mut b = [1.0, 2.0];
        assert!(matches!(
            solve_dense(&mut a, 2, &mut b),
            Err(LinalgError::Singular(_))
        ));
    }

    #[test]
    fn invert_roundtrip() {
        let a0 = [4.0, 7.0, 2.0, 6.0];
        let mut inv = a0;
        invert(&mut inv, 2).unwrap();
        let mut prod = [0.0; 4];
        matmul(&a0, &inv, 2, &mut prod);
        assert!((prod[0] - 1.0).abs() < 1e-12);
        assert!(prod[1].abs() < 1e-12);
        assert!(prod[2].abs() < 1e-12);
        assert!((prod[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_systems_solve_accurately() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for n in [1usize, 2, 5, 9, 16] {
            let mut a0 = vec![0.0; n * n];
            for (i, v) in a0.iter_mut().enumerate() {
                *v = next();
                if i % (n + 1) == 0 {
                    *v += 3.0; // diagonal dominance => well conditioned
                }
            }
            let b0: Vec<f64> = (0..n).map(|_| next()).collect();
            let mut a = a0.clone();
            let mut x = b0.clone();
            solve_dense(&mut a, n, &mut x).unwrap();
            assert!(residual(&a0, n, &x, &b0) < 1e-10, "n={n}");
        }
    }
}
