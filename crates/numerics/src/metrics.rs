//! Typed metrics registry: gauges and log-bucketed timing histograms with
//! thread-local shards, plus unified JSON / Prometheus-style exposition.
//!
//! Where [`crate::telemetry::counters`] counts *how much work* ran and
//! [`crate::trace`] records *where the time went* as min/mean/max span
//! aggregates, this module answers distribution questions — "what is the
//! p99 of an `euler_step` right now?" — the way a serving daemon must:
//!
//! * **Timing histograms** ([`Timer`]): log-bucketed `u64` nanosecond
//!   histograms (8 sub-buckets per octave, ≤ ~9 % relative bucket width)
//!   recorded through cheap optionally-sampled RAII guards ([`time`]).
//!   Every call is counted; only every `2^sample_shift`-th call pays the
//!   two `Instant::now` reads, so even µs-scale kernels stay inside the
//!   CI perf-ratchet ceiling with metrics enabled.
//! * **Gauges** ([`Gauge`]): last-write-wins `f64` values (current CFL
//!   scale, sweep worker utilization) stored as atomic bit patterns.
//! * **Counters**: the existing [`crate::telemetry::counters`] registry,
//!   folded into this module's snapshot and exposition so one endpoint
//!   serves all three metric types.
//!
//! # Determinism
//!
//! Each thread records into its own shard (an uncontended mutex, same
//! pattern as [`crate::trace`]); [`snapshot`] merges shards by bucket-wise
//! `u64` addition and min/max folds — all commutative and associative, so
//! the merged result is **order-invariant**: any partition of the same
//! observations across any number of shards merges to the identical
//! [`Histogram`] (property-tested). Quantiles are computed from fixed
//! bucket upper bounds, never by interpolation, so summaries are
//! deterministic functions of the merged buckets.
//!
//! Wall-clock *values* are of course nondeterministic; histogram data is
//! therefore kept out of every bitwise-compared payload (sweep stores,
//! feature-parity reports) and surfaced only in observability sections.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::telemetry::counters;

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per power-of-two octave.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Values below `SUB` ns get exact unit buckets; above, octave × sub-bucket.
/// Top octave 63 ends at index `SUB + (63 - SUB_BITS) * SUB + 7` = 487.
const N_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Map a duration in nanoseconds to its histogram bucket index.
#[inline]
#[must_use]
pub fn bucket_index(ns: u64) -> usize {
    if ns < SUB as u64 {
        return ns as usize;
    }
    let top = 63 - ns.leading_zeros(); // >= SUB_BITS
    let sub = ((ns >> (top - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    SUB + (top - SUB_BITS) as usize * SUB + sub
}

/// Inclusive upper bound (ns) of histogram bucket `idx` — the value
/// reported by [`Histogram::quantile_ns`]; deterministic by construction.
#[must_use]
pub fn bucket_upper_ns(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let rel = idx - SUB;
    let top = SUB_BITS + (rel / SUB) as u32;
    let sub = (rel % SUB) as u64;
    let lower = (1u64 << top) | (sub << (top - SUB_BITS));
    // Parenthesized so the top bucket (upper == u64::MAX) cannot overflow.
    lower + ((1u64 << (top - SUB_BITS)) - 1)
}

/// A log-bucketed duration histogram over `u64` nanoseconds.
///
/// Merging ([`Histogram::merge`]) is bucket-wise addition plus min/max
/// folds, so any merge order (or sharding) of the same observations yields
/// a bitwise-identical result.
#[derive(Clone)]
pub struct Histogram {
    buckets: Box<[u64; N_BUCKETS]>,
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded durations \[ns\].
    pub sum_ns: u64,
    /// Smallest recorded duration \[ns\] (`u64::MAX` when empty).
    pub min_ns: u64,
    /// Largest recorded duration \[ns\].
    pub max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum_ns", &self.sum_ns)
            .field("min_ns", &self.min_ns)
            .field("max_ns", &self.max_ns)
            .finish_non_exhaustive()
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum_ns == other.sum_ns
            && self.min_ns == other.min_ns
            && self.max_ns == other.max_ns
            && self.buckets[..] == other.buckets[..]
    }
}
impl Eq for Histogram {}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0; N_BUCKETS]),
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Record one duration \[ns\].
    pub fn observe_ns(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Fold another histogram into this one (commutative, associative).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean recorded duration \[ns\] (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper bound of the bucket
    /// holding the `ceil(q·count)`-th smallest observation; 0 when empty.
    /// Deterministic: depends only on merged bucket counts.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_ns(idx).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Non-empty buckets as `(upper_bound_ns, cumulative_count)` pairs —
    /// the shape Prometheus `le` histogram series want.
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((bucket_upper_ns(idx), cum));
            }
        }
        out
    }
}

/// Instrumented kernels with timing histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Timer {
    /// One explicit Euler solver step (`euler2d::Euler2d::step`).
    EulerStep,
    /// One explicit Navier–Stokes solver step (`ns2d::NavierStokes2d::step`).
    NsStep,
    /// One reacting-solver step.
    ReactingStep,
    /// One equilibrium-composition Newton solve (warm or cold).
    EquilibriumNewton,
    /// One full face-flux assembly sweep (all i- and j-faces of a step).
    FaceSweep,
}

/// Number of [`Timer`] variants.
pub const N_TIMERS: usize = 5;

impl Timer {
    /// Every timer, in declaration (and exposition) order.
    pub const ALL: [Timer; N_TIMERS] = [
        Timer::EulerStep,
        Timer::NsStep,
        Timer::ReactingStep,
        Timer::EquilibriumNewton,
        Timer::FaceSweep,
    ];

    /// Stable snake_case name used in JSON and Prometheus exposition.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Timer::EulerStep => "euler_step",
            Timer::NsStep => "ns_step",
            Timer::ReactingStep => "reacting_step",
            Timer::EquilibriumNewton => "equilibrium_newton",
            Timer::FaceSweep => "face_sweep",
        }
    }

    /// Sampling shift: every call is counted, every `2^shift`-th call is
    /// timed. Step-level kernels (100 µs+) afford exact timing; the
    /// µs-scale Newton solve and face sweeps sample 1-in-4 to keep the
    /// instrumentation overhead well inside the perf-ratchet ceiling.
    #[must_use]
    pub const fn sample_shift(self) -> u32 {
        match self {
            Timer::EulerStep | Timer::NsStep | Timer::ReactingStep => 0,
            Timer::EquilibriumNewton | Timer::FaceSweep => 2,
        }
    }
}

/// Last-write-wins scalar gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Current adaptive CFL scale of the most recent controlled run.
    CflScale,
    /// Sweep workers currently executing a case.
    SweepWorkersBusy,
    /// Cases finished (any status) in the current sweep.
    SweepCasesDone,
    /// Cases planned in the current sweep.
    SweepCasesTotal,
}

/// Number of [`Gauge`] variants.
pub const N_GAUGES: usize = 4;

impl Gauge {
    /// Every gauge, in declaration (and exposition) order.
    pub const ALL: [Gauge; N_GAUGES] = [
        Gauge::CflScale,
        Gauge::SweepWorkersBusy,
        Gauge::SweepCasesDone,
        Gauge::SweepCasesTotal,
    ];

    /// Stable snake_case name used in JSON and Prometheus exposition.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::CflScale => "cfl_scale",
            Gauge::SweepWorkersBusy => "sweep_workers_busy",
            Gauge::SweepCasesDone => "sweep_cases_done",
            Gauge::SweepCasesTotal => "sweep_cases_total",
        }
    }
}

/// Gauge storage: f64 bit patterns in relaxed atomics (0.0 initially).
static GAUGES: [AtomicU64; N_GAUGES] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Set a gauge to `value`.
pub fn set_gauge(g: Gauge, value: f64) {
    GAUGES[g as usize].store(value.to_bits(), Ordering::Relaxed);
}

/// Current value of a gauge.
#[must_use]
pub fn gauge(g: Gauge) -> f64 {
    f64::from_bits(GAUGES[g as usize].load(Ordering::Relaxed))
}

/// Per-timer state on one thread: total calls plus the sampled histogram.
#[derive(Default, Clone)]
struct TimerShard {
    calls: u64,
    hist: Option<Histogram>,
}

/// One thread's metrics shard. Self-registers in the global registry so
/// [`snapshot`] and [`reset_all`] reach every thread's data.
#[derive(Default)]
struct Shard {
    timers: [TimerShard; N_TIMERS],
}

fn registry() -> &'static Mutex<Vec<Arc<Mutex<Shard>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<Shard>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Arc<Mutex<Shard>> = {
        let shard = Arc::new(Mutex::new(Shard::default()));
        registry().lock().unwrap().push(Arc::clone(&shard));
        shard
    };
    /// Per-thread per-timer call sequence used for sampling decisions.
    static SEQ: std::cell::Cell<[u64; N_TIMERS]> = const { std::cell::Cell::new([0; N_TIMERS]) };
}

/// Metrics collection defaults to ON: the recorders are cheap enough for
/// the CI perf ratchet, and observability that must be switched on before
/// the incident is not observability.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turn metrics collection on.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn metrics collection off; [`time`] guards become inert.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether metrics are currently recording.
#[inline]
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear every thread's shard (calls and histograms) and zero all gauges.
/// Counters are *not* touched; see `telemetry::reset_all` for the
/// everything-reset used between tests.
pub fn reset_all() {
    for shard in registry().lock().unwrap().iter() {
        let mut s = shard.lock().unwrap();
        for t in s.timers.iter_mut() {
            *t = TimerShard::default();
        }
    }
    for g in &GAUGES {
        g.store(0, Ordering::Relaxed);
    }
}

/// RAII guard from [`time`]: counts the call immediately, records the
/// duration into the calling thread's histogram on drop when sampled.
#[must_use = "a timer guard records on drop; binding it to _ closes it immediately"]
pub struct TimerGuard {
    live: Option<(Timer, Instant)>,
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        if let Some((t, start)) = self.live.take() {
            let ns = start.elapsed().as_nanos() as u64;
            record_duration_ns(t, ns);
        }
    }
}

/// Count one call of `t` and, on sampled calls, start its timer. The
/// returned guard records into the calling thread's shard when dropped.
#[inline]
pub fn time(t: Timer) -> TimerGuard {
    if !is_enabled() {
        return TimerGuard { live: None };
    }
    LOCAL.with(|shard| shard.lock().unwrap().timers[t as usize].calls += 1);
    let sampled = SEQ.with(|seq| {
        let mut s = seq.get();
        let n = s[t as usize];
        s[t as usize] = n.wrapping_add(1);
        seq.set(s);
        n & ((1 << t.sample_shift()) - 1) == 0
    });
    TimerGuard {
        live: sampled.then(|| (t, Instant::now())),
    }
}

/// Record an explicit duration for `t` into the calling thread's
/// histogram (does not increment the call count — [`time`] does that).
pub fn record_duration_ns(t: Timer, ns: u64) {
    LOCAL.with(|shard| {
        let mut s = shard.lock().unwrap();
        s.timers[t as usize]
            .hist
            .get_or_insert_with(Histogram::new)
            .observe_ns(ns);
    });
}

/// Merged summary of one timer across all thread shards.
#[derive(Debug, Clone)]
pub struct TimerSummary {
    /// Which kernel.
    pub timer: Timer,
    /// Total calls observed (sampled or not).
    pub calls: u64,
    /// The merged sampled-duration histogram.
    pub hist: Histogram,
}

impl TimerSummary {
    /// Convenience: (p50, p90, p99) in ns.
    #[must_use]
    pub fn quantiles_ns(&self) -> (u64, u64, u64) {
        (
            self.hist.quantile_ns(0.50),
            self.hist.quantile_ns(0.90),
            self.hist.quantile_ns(0.99),
        )
    }
}

/// A point-in-time merge of every shard: timers with nonzero calls, all
/// gauges, and the full telemetry counter set.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Per-timer merged summaries (only timers with calls > 0), in
    /// [`Timer::ALL`] order.
    pub timings: Vec<TimerSummary>,
    /// `(name, value)` for every gauge, in [`Gauge::ALL`] order.
    pub gauges: Vec<(&'static str, f64)>,
    /// `(name, value)` for every telemetry counter, in declaration order.
    pub counters: Vec<(&'static str, u64)>,
}

/// Merge every thread shard into a [`MetricsSnapshot`]. Order-invariant:
/// the result is independent of thread registration or recording order.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let mut timers: Vec<TimerSummary> = Timer::ALL
        .iter()
        .map(|&t| TimerSummary {
            timer: t,
            calls: 0,
            hist: Histogram::new(),
        })
        .collect();
    for shard in registry().lock().unwrap().iter() {
        let s = shard.lock().unwrap();
        for (i, ts) in s.timers.iter().enumerate() {
            timers[i].calls += ts.calls;
            if let Some(h) = &ts.hist {
                timers[i].hist.merge(h);
            }
        }
    }
    timers.retain(|t| t.calls > 0 || t.hist.count > 0);
    let counter_snap = counters::CounterSnapshot::take();
    MetricsSnapshot {
        timings: timers,
        gauges: Gauge::ALL.iter().map(|&g| (g.name(), gauge(g))).collect(),
        counters: counter_snap.iter().collect(),
    }
}

impl MetricsSnapshot {
    /// The merged summary for `t`, if it recorded anything.
    #[must_use]
    pub fn timing(&self, t: Timer) -> Option<&TimerSummary> {
        self.timings.iter().find(|s| s.timer == t)
    }

    /// JSON object: `{"timings": {...}, "gauges": {...}, "counters": {...}}`.
    ///
    /// Each timing carries `calls`, `samples` (histogram count), `p50_ns`,
    /// `p90_ns`, `p95_ns`, `p99_ns`, `min_ns`, `max_ns`, `mean_ns`,
    /// `total_ns`. Timing values are wall-clock and must stay out of
    /// bitwise-compared payloads.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1 << 12);
        s.push_str("{\"timings\": {");
        for (k, t) in self.timings.iter().enumerate() {
            if k > 0 {
                s.push_str(", ");
            }
            let h = &t.hist;
            let min = if h.count == 0 { 0 } else { h.min_ns };
            s.push_str(&format!(
                "\"{}\": {{\"calls\": {}, \"samples\": {}, \"p50_ns\": {}, \
                 \"p90_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}, \"mean_ns\": {}, \"total_ns\": {}}}",
                t.timer.name(),
                t.calls,
                h.count,
                h.quantile_ns(0.50),
                h.quantile_ns(0.90),
                h.quantile_ns(0.95),
                h.quantile_ns(0.99),
                min,
                h.max_ns,
                h.mean_ns(),
                h.sum_ns,
            ));
        }
        s.push_str("}, \"gauges\": {");
        for (k, (name, v)) in self.gauges.iter().enumerate() {
            if k > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{name}\": {}", crate::json::write_f64(*v)));
        }
        s.push_str("}, \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            if *v == 0 {
                continue;
            }
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("\"{name}\": {v}"));
        }
        s.push_str("}}");
        s
    }

    /// Prometheus-style text exposition (durations in seconds, cumulative
    /// `le` buckets at non-empty boundaries, `+Inf` terminal).
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        let mut s = String::with_capacity(1 << 12);
        for (name, v) in &self.counters {
            s.push_str(&format!(
                "# TYPE aerothermo_{name}_total counter\naerothermo_{name}_total {v}\n"
            ));
        }
        for (name, v) in &self.gauges {
            s.push_str(&format!(
                "# TYPE aerothermo_{name} gauge\naerothermo_{name} "
            ));
            if v.is_finite() {
                s.push_str(&format!("{v}"));
            } else {
                s.push_str("NaN");
            }
            s.push('\n');
        }
        for t in &self.timings {
            let name = t.timer.name();
            s.push_str(&format!("# TYPE aerothermo_{name}_seconds histogram\n"));
            for (upper_ns, cum) in t.hist.cumulative_buckets() {
                s.push_str(&format!(
                    "aerothermo_{name}_seconds_bucket{{le=\"{}\"}} {cum}\n",
                    upper_ns as f64 / 1e9
                ));
            }
            s.push_str(&format!(
                "aerothermo_{name}_seconds_bucket{{le=\"+Inf\"}} {}\n",
                t.hist.count
            ));
            s.push_str(&format!(
                "aerothermo_{name}_seconds_sum {}\n",
                t.hist.sum_ns as f64 / 1e9
            ));
            s.push_str(&format!(
                "aerothermo_{name}_seconds_count {}\n",
                t.hist.count
            ));
            s.push_str(&format!("aerothermo_{name}_calls_total {}\n", t.calls));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Metrics state is process-global; serialize mutating tests.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn bucket_roundtrip_monotone() {
        let mut prev_upper = 0u64;
        for idx in 0..N_BUCKETS {
            let upper = bucket_upper_ns(idx);
            if idx > 0 {
                assert!(upper > prev_upper, "bucket {idx} upper not monotone");
            }
            prev_upper = upper;
        }
        for ns in [0u64, 1, 7, 8, 9, 100, 999, 1_000, 123_456, u64::MAX / 2] {
            let idx = bucket_index(ns);
            assert!(ns <= bucket_upper_ns(idx), "ns={ns} above bucket upper");
            if idx > 0 {
                assert!(
                    ns > bucket_upper_ns(idx - 1),
                    "ns={ns} not above previous bucket"
                );
            }
        }
    }

    #[test]
    fn bucket_width_stays_under_ten_percent() {
        for idx in SUB..N_BUCKETS - 1 {
            let lo = bucket_upper_ns(idx - 1) + 1;
            let hi = bucket_upper_ns(idx);
            let width = (hi - lo + 1) as f64 / hi as f64;
            assert!(width <= 0.126, "bucket {idx}: width {width}");
        }
    }

    #[test]
    fn quantiles_bracket_observations() {
        let mut h = Histogram::new();
        for ns in 1..=1000u64 {
            h.observe_ns(ns);
        }
        assert_eq!(h.count, 1000);
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        // Bucket upper bounds over-estimate by at most one bucket width.
        assert!((450..=600).contains(&p50), "p50={p50}");
        assert!((900..=1100).contains(&p99), "p99={p99}");
        assert!(h.quantile_ns(1.0) == h.max_ns);
    }

    #[test]
    fn merge_matches_single_histogram() {
        let values: Vec<u64> = (0..500).map(|i| (i * 7919) % 100_000).collect();
        let mut whole = Histogram::new();
        for &v in &values {
            whole.observe_ns(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 3 == 0 {
                a.observe_ns(v);
            } else {
                b.observe_ns(v);
            }
        }
        let mut merged = Histogram::new();
        merged.merge(&b);
        merged.merge(&a);
        assert_eq!(merged, whole);
    }

    #[test]
    fn timer_guard_records_counts_and_samples() {
        let _g = lock();
        reset_all();
        enable();
        for _ in 0..8 {
            let _t = time(Timer::EquilibriumNewton);
            std::hint::black_box(1.0_f64.sqrt());
        }
        let snap = snapshot();
        let t = snap.timing(Timer::EquilibriumNewton).unwrap();
        assert_eq!(t.calls, 8);
        // shift=2 → every 4th call sampled; thread-local phase means we can
        // only bound the sample count, not pin it.
        assert!(t.hist.count >= 1 && t.hist.count <= 8);
        reset_all();
    }

    #[test]
    fn disabled_timers_record_nothing() {
        let _g = lock();
        reset_all();
        disable();
        {
            let _t = time(Timer::EulerStep);
        }
        enable();
        let snap = snapshot();
        assert!(snap.timing(Timer::EulerStep).is_none());
        reset_all();
    }

    #[test]
    fn gauges_roundtrip() {
        let _g = lock();
        set_gauge(Gauge::CflScale, 0.25);
        assert_eq!(gauge(Gauge::CflScale), 0.25);
        reset_all();
        assert_eq!(gauge(Gauge::CflScale), 0.0);
    }

    #[test]
    fn json_and_prometheus_expositions_are_well_formed() {
        let _g = lock();
        reset_all();
        enable();
        record_duration_ns(Timer::EulerStep, 150_000);
        record_duration_ns(Timer::EulerStep, 250_000);
        set_gauge(Gauge::CflScale, 1.0);
        let snap = snapshot();
        let json = snap.to_json();
        let v = crate::json::parse(&json).expect("snapshot JSON parses");
        let timings = v.get("timings").unwrap();
        let es = timings.get("euler_step").unwrap();
        assert!(es.get("p50_ns").unwrap().as_f64().unwrap() > 0.0);
        assert!(
            es.get("p99_ns").unwrap().as_f64().unwrap()
                >= es.get("p50_ns").unwrap().as_f64().unwrap()
        );
        let text = snap.prometheus_text();
        assert!(text.contains("# TYPE aerothermo_euler_step_seconds histogram"));
        assert!(text.contains("aerothermo_euler_step_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("aerothermo_euler_step_seconds_count 2"));
        assert!(text.contains("aerothermo_cfl_scale 1"));
        reset_all();
    }
}
