//! TVD slope limiters for MUSCL reconstruction.
//!
//! The upwind finite-volume solvers (`euler2d`, `ns2d`, `pns`) reconstruct
//! interface states from cell averages; these limiters keep the
//! reconstruction monotone through the captured bow shock.

/// Which limiter a solver should apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Limiter {
    /// First order (zero slope) — maximum robustness.
    FirstOrder,
    /// Minmod — most dissipative of the second-order family.
    #[default]
    Minmod,
    /// Van Leer's smooth harmonic limiter.
    VanLeer,
    /// Superbee — sharpest, least dissipative.
    Superbee,
}

impl Limiter {
    /// Limited slope from left and right one-sided differences `a`, `b`.
    #[inline]
    #[must_use]
    pub fn slope(self, a: f64, b: f64) -> f64 {
        match self {
            Limiter::FirstOrder => 0.0,
            Limiter::Minmod => minmod(a, b),
            Limiter::VanLeer => van_leer(a, b),
            Limiter::Superbee => superbee(a, b),
        }
    }
}

/// Minmod of two slopes: the smaller magnitude when signs agree, else 0.
#[inline]
#[must_use]
pub fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

/// Van Leer harmonic limiter: `2ab/(a+b)` for same-signed slopes.
#[inline]
#[must_use]
pub fn van_leer(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else {
        2.0 * a * b / (a + b)
    }
}

/// Superbee limiter.
#[inline]
#[must_use]
pub fn superbee(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        return 0.0;
    }
    let s = a.signum();
    let aa = a.abs();
    let ab = b.abs();
    s * (aa.min(2.0 * ab)).max(ab.min(2.0 * aa))
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITERS: [Limiter; 4] = [
        Limiter::FirstOrder,
        Limiter::Minmod,
        Limiter::VanLeer,
        Limiter::Superbee,
    ];

    #[test]
    fn zero_at_extrema() {
        // Opposite-signed slopes (local extremum) must give zero slope for
        // every limiter — that is the TVD property.
        for lim in LIMITERS {
            assert_eq!(lim.slope(1.0, -2.0), 0.0, "{lim:?}");
            assert_eq!(lim.slope(-0.1, 3.0), 0.0, "{lim:?}");
        }
    }

    #[test]
    fn symmetric_on_equal_slopes() {
        for lim in [Limiter::Minmod, Limiter::VanLeer, Limiter::Superbee] {
            let s = lim.slope(2.0, 2.0);
            assert!((s - 2.0).abs() < 1e-14, "{lim:?} gave {s}");
        }
    }

    #[test]
    fn bounded_by_twice_min_slope() {
        // All second-order TVD limiters satisfy |φ| ≤ 2·min(|a|,|b|).
        for lim in [Limiter::Minmod, Limiter::VanLeer, Limiter::Superbee] {
            for (a, b) in [(1.0, 3.0), (0.5, 0.1), (4.0, 4.0), (1e-8, 1.0)] {
                let s = lim.slope(a, b).abs();
                assert!(
                    s <= 2.0 * a.abs().min(b.abs()) + 1e-15,
                    "{lim:?} a={a} b={b} s={s}"
                );
            }
        }
    }

    #[test]
    fn dissipation_ordering() {
        // minmod ≤ van Leer ≤ superbee in magnitude for same-signed slopes.
        for (a, b) in [(1.0, 2.0), (0.3, 0.9), (5.0, 1.0)] {
            let m = minmod(a, b);
            let v = van_leer(a, b);
            let s = superbee(a, b);
            assert!(m <= v + 1e-14 && v <= s + 1e-14, "a={a} b={b}: {m} {v} {s}");
        }
    }

    #[test]
    fn sign_preserved() {
        for lim in [Limiter::Minmod, Limiter::VanLeer, Limiter::Superbee] {
            assert!(lim.slope(-1.0, -2.0) < 0.0, "{lim:?}");
            assert!(lim.slope(1.0, 2.0) > 0.0, "{lim:?}");
        }
    }
}
