//! TVD slope limiters for MUSCL reconstruction.
//!
//! The upwind finite-volume solvers (`euler2d`, `ns2d`, `pns`) reconstruct
//! interface states from cell averages; these limiters keep the
//! reconstruction monotone through the captured bow shock.
//!
//! Each limiter exists in two forms: the scalar [`Limiter::slope`] used by
//! the cell-centered reference paths, and the four-wide [`Limiter::slope4`]
//! used by the vectorized face sweeps. The vector forms are op-for-op
//! transcriptions of the scalar ones (same expression grouping, branchless
//! via bitwise [`F64x4::select`] blends), so they agree bit-for-bit on every
//! finite input.

use crate::simd::F64x4;

/// Which limiter a solver should apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Limiter {
    /// First order (zero slope) — maximum robustness.
    FirstOrder,
    /// Minmod — most dissipative of the second-order family.
    #[default]
    Minmod,
    /// Van Leer's smooth harmonic limiter.
    VanLeer,
    /// Superbee — sharpest, least dissipative.
    Superbee,
}

impl Limiter {
    /// Limited slope from left and right one-sided differences `a`, `b`.
    #[inline]
    #[must_use]
    pub fn slope(self, a: f64, b: f64) -> f64 {
        match self {
            Limiter::FirstOrder => 0.0,
            Limiter::Minmod => minmod(a, b),
            Limiter::VanLeer => van_leer(a, b),
            Limiter::Superbee => superbee(a, b),
        }
    }

    /// Four-wide [`Self::slope`]: limited slopes for four faces at once.
    ///
    /// Bitwise identical to calling [`Self::slope`] on each lane for all
    /// finite inputs (the branchless selects reproduce the scalar branch
    /// structure exactly).
    #[inline]
    #[must_use]
    pub fn slope4(self, a: F64x4, b: F64x4) -> F64x4 {
        match self {
            Limiter::FirstOrder => F64x4::splat(0.0),
            Limiter::Minmod => minmod4(a, b),
            Limiter::VanLeer => van_leer4(a, b),
            Limiter::Superbee => superbee4(a, b),
        }
    }
}

/// Minmod of two slopes: the smaller magnitude when signs agree, else 0.
#[inline]
#[must_use]
pub fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

/// Van Leer harmonic limiter: `2ab/(a+b)` for same-signed slopes.
#[inline]
#[must_use]
pub fn van_leer(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else {
        2.0 * a * b / (a + b)
    }
}

/// Superbee limiter.
#[inline]
#[must_use]
pub fn superbee(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        return 0.0;
    }
    let s = a.signum();
    let aa = a.abs();
    let ab = b.abs();
    s * (aa.min(2.0 * ab)).max(ab.min(2.0 * aa))
}

/// Four-wide [`minmod`]: per lane, the smaller-magnitude slope when signs
/// agree, else zero. The select order mirrors the scalar branch chain.
#[inline]
#[must_use]
pub fn minmod4(a: F64x4, b: F64x4) -> F64x4 {
    let zero = F64x4::splat(0.0);
    let pick = F64x4::select(a.abs().lt(b.abs()), a, b);
    F64x4::select((a * b).le(zero), zero, pick)
}

/// Four-wide [`van_leer`]. The harmonic mean is computed unconditionally;
/// the bitwise blend discards the (possibly 0/0 = NaN) lanes where the
/// slopes disagree in sign.
#[inline]
#[must_use]
pub fn van_leer4(a: F64x4, b: F64x4) -> F64x4 {
    let zero = F64x4::splat(0.0);
    let harmonic = F64x4::splat(2.0) * a * b / (a + b);
    F64x4::select((a * b).le(zero), zero, harmonic)
}

/// Four-wide [`superbee`]. `signum` is realized as a select (valid because
/// the zero-slope lanes are discarded by the sign-agreement blend).
#[inline]
#[must_use]
pub fn superbee4(a: F64x4, b: F64x4) -> F64x4 {
    let zero = F64x4::splat(0.0);
    let s = F64x4::select(a.lt(zero), F64x4::splat(-1.0), F64x4::splat(1.0));
    let aa = a.abs();
    let ab = b.abs();
    let two = F64x4::splat(2.0);
    let sb = s * (aa.min(two * ab)).max(ab.min(two * aa));
    F64x4::select((a * b).le(zero), zero, sb)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITERS: [Limiter; 4] = [
        Limiter::FirstOrder,
        Limiter::Minmod,
        Limiter::VanLeer,
        Limiter::Superbee,
    ];

    #[test]
    fn zero_at_extrema() {
        // Opposite-signed slopes (local extremum) must give zero slope for
        // every limiter — that is the TVD property.
        for lim in LIMITERS {
            assert_eq!(lim.slope(1.0, -2.0), 0.0, "{lim:?}");
            assert_eq!(lim.slope(-0.1, 3.0), 0.0, "{lim:?}");
        }
    }

    #[test]
    fn symmetric_on_equal_slopes() {
        for lim in [Limiter::Minmod, Limiter::VanLeer, Limiter::Superbee] {
            let s = lim.slope(2.0, 2.0);
            assert!((s - 2.0).abs() < 1e-14, "{lim:?} gave {s}");
        }
    }

    #[test]
    fn bounded_by_twice_min_slope() {
        // All second-order TVD limiters satisfy |φ| ≤ 2·min(|a|,|b|).
        for lim in [Limiter::Minmod, Limiter::VanLeer, Limiter::Superbee] {
            for (a, b) in [(1.0, 3.0), (0.5, 0.1), (4.0, 4.0), (1e-8, 1.0)] {
                let s = lim.slope(a, b).abs();
                assert!(
                    s <= 2.0 * a.abs().min(b.abs()) + 1e-15,
                    "{lim:?} a={a} b={b} s={s}"
                );
            }
        }
    }

    #[test]
    fn dissipation_ordering() {
        // minmod ≤ van Leer ≤ superbee in magnitude for same-signed slopes.
        for (a, b) in [(1.0, 2.0), (0.3, 0.9), (5.0, 1.0)] {
            let m = minmod(a, b);
            let v = van_leer(a, b);
            let s = superbee(a, b);
            assert!(m <= v + 1e-14 && v <= s + 1e-14, "a={a} b={b}: {m} {v} {s}");
        }
    }

    #[test]
    fn slope4_bitwise_matches_scalar() {
        // Deterministic pseudo-random slope pairs covering sign changes,
        // magnitude orderings, exact zeros, and tiny/huge scales.
        let mut state = 0x9e3779b97f4a7c15_u64;
        let mut noise = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 4.0
        };
        for lim in LIMITERS {
            for round in 0..64 {
                let mut a = [0.0; 4];
                let mut b = [0.0; 4];
                for k in 0..4 {
                    a[k] = noise() * 10f64.powi((round % 7) - 3);
                    b[k] = noise() * 10f64.powi((round % 5) - 2);
                }
                // Force exact-zero and equal-slope lanes periodically.
                if round % 3 == 0 {
                    a[1] = 0.0;
                    b[2] = a[2];
                }
                let v = lim
                    .slope4(F64x4::from_array(a), F64x4::from_array(b))
                    .to_array();
                for k in 0..4 {
                    let s = lim.slope(a[k], b[k]);
                    assert_eq!(
                        v[k].to_bits(),
                        s.to_bits(),
                        "{lim:?} lane {k}: a={} b={} vector={} scalar={s}",
                        a[k],
                        b[k],
                        v[k]
                    );
                }
            }
        }
    }

    #[test]
    fn sign_preserved() {
        for lim in [Limiter::Minmod, Limiter::VanLeer, Limiter::Superbee] {
            assert!(lim.slope(-1.0, -2.0) < 0.0, "{lim:?}");
            assert!(lim.slope(1.0, 2.0) > 0.0, "{lim:?}");
        }
    }
}
