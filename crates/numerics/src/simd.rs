//! Four-wide `f64` vectors for the hot flux/limiter kernels.
//!
//! The solvers write their vectorized inner loops once, against [`F64x4`];
//! this module provides two interchangeable backends:
//!
//! * with the `simd` cargo feature on an `x86_64` target, lanes live in a
//!   pair of SSE2 `__m128d` registers (SSE2 is part of the `x86_64`
//!   baseline, so no runtime feature detection is needed);
//! * otherwise a hand-unrolled `[f64; 4]` scalar quad that the optimizer
//!   can still keep in registers.
//!
//! Every operation is lane-wise IEEE-754 double arithmetic with **bitwise
//! identical semantics across the two backends** — including the edge
//! cases. `min`/`max` are defined as `if a < b { a } else { b }` /
//! `if a > b { a } else { b }` per lane, which is exactly what the SSE2
//! `minpd`/`maxpd` instructions compute (second operand returned on NaN or
//! equal-magnitude signed zeros). [`F64x4::select`] is a bitwise blend, so
//! NaNs in discarded lanes never propagate. This is what lets CI assert
//! bitwise-identical physics payloads between `--features simd` and
//! default-scalar builds.

use core::ops::{Add, Div, Mul, Neg, Sub};

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod backend {
    use super::*;
    use core::arch::x86_64::*;

    /// Four `f64` lanes held in two SSE2 registers.
    #[derive(Clone, Copy)]
    pub struct F64x4(__m128d, __m128d);

    /// Lane-wise comparison result (all-ones / all-zeros per lane).
    #[derive(Clone, Copy)]
    pub struct Mask4(__m128d, __m128d);

    impl F64x4 {
        /// All four lanes set to `v`.
        #[inline]
        #[must_use]
        pub fn splat(v: f64) -> Self {
            unsafe { Self(_mm_set1_pd(v), _mm_set1_pd(v)) }
        }

        /// Lanes from an array, index = lane.
        #[inline]
        #[must_use]
        pub fn from_array(a: [f64; 4]) -> Self {
            unsafe { Self(_mm_set_pd(a[1], a[0]), _mm_set_pd(a[3], a[2])) }
        }

        /// Lanes back to an array.
        #[inline]
        #[must_use]
        pub fn to_array(self) -> [f64; 4] {
            let mut out = [0.0; 4];
            unsafe {
                _mm_storeu_pd(out.as_mut_ptr(), self.0);
                _mm_storeu_pd(out.as_mut_ptr().add(2), self.1);
            }
            out
        }

        /// Load the first four elements of `s` (panics if `s.len() < 4`).
        #[inline]
        #[must_use]
        pub fn load(s: &[f64]) -> Self {
            assert!(s.len() >= 4);
            unsafe { Self(_mm_loadu_pd(s.as_ptr()), _mm_loadu_pd(s.as_ptr().add(2))) }
        }

        /// Store into the first four elements of `s` (panics if too short).
        #[inline]
        pub fn store(self, s: &mut [f64]) {
            assert!(s.len() >= 4);
            unsafe {
                _mm_storeu_pd(s.as_mut_ptr(), self.0);
                _mm_storeu_pd(s.as_mut_ptr().add(2), self.1);
            }
        }

        /// Lane-wise square root (IEEE correctly rounded, same as
        /// [`f64::sqrt`]).
        #[inline]
        #[must_use]
        pub fn sqrt(self) -> Self {
            unsafe { Self(_mm_sqrt_pd(self.0), _mm_sqrt_pd(self.1)) }
        }

        /// Lane-wise absolute value (sign bit cleared, same as
        /// [`f64::abs`]).
        #[inline]
        #[must_use]
        pub fn abs(self) -> Self {
            unsafe {
                let sign = _mm_set1_pd(-0.0);
                Self(_mm_andnot_pd(sign, self.0), _mm_andnot_pd(sign, self.1))
            }
        }

        /// Lane-wise `if self < other { self } else { other }` (the exact
        /// `minpd` semantics, shared with the scalar backend).
        #[inline]
        #[must_use]
        pub fn min(self, other: Self) -> Self {
            unsafe { Self(_mm_min_pd(self.0, other.0), _mm_min_pd(self.1, other.1)) }
        }

        /// Lane-wise `if self > other { self } else { other }` (the exact
        /// `maxpd` semantics, shared with the scalar backend).
        #[inline]
        #[must_use]
        pub fn max(self, other: Self) -> Self {
            unsafe { Self(_mm_max_pd(self.0, other.0), _mm_max_pd(self.1, other.1)) }
        }

        /// Lane-wise `self < other`.
        #[inline]
        #[must_use]
        pub fn lt(self, other: Self) -> Mask4 {
            unsafe { Mask4(_mm_cmplt_pd(self.0, other.0), _mm_cmplt_pd(self.1, other.1)) }
        }

        /// Lane-wise `self <= other`.
        #[inline]
        #[must_use]
        pub fn le(self, other: Self) -> Mask4 {
            unsafe { Mask4(_mm_cmple_pd(self.0, other.0), _mm_cmple_pd(self.1, other.1)) }
        }

        /// Lane-wise `self > other`.
        #[inline]
        #[must_use]
        pub fn gt(self, other: Self) -> Mask4 {
            unsafe { Mask4(_mm_cmpgt_pd(self.0, other.0), _mm_cmpgt_pd(self.1, other.1)) }
        }

        /// Lane-wise `self >= other`.
        #[inline]
        #[must_use]
        pub fn ge(self, other: Self) -> Mask4 {
            unsafe { Mask4(_mm_cmpge_pd(self.0, other.0), _mm_cmpge_pd(self.1, other.1)) }
        }

        /// Bitwise lane blend: `a` where the mask lane is set, else `b`.
        /// A pure bit select — NaNs in discarded lanes are never touched.
        #[inline]
        #[must_use]
        pub fn select(mask: Mask4, a: Self, b: Self) -> Self {
            unsafe {
                Self(
                    _mm_or_pd(_mm_and_pd(mask.0, a.0), _mm_andnot_pd(mask.0, b.0)),
                    _mm_or_pd(_mm_and_pd(mask.1, a.1), _mm_andnot_pd(mask.1, b.1)),
                )
            }
        }
    }

    impl Add for F64x4 {
        type Output = Self;
        #[inline]
        fn add(self, rhs: Self) -> Self {
            unsafe { Self(_mm_add_pd(self.0, rhs.0), _mm_add_pd(self.1, rhs.1)) }
        }
    }
    impl Sub for F64x4 {
        type Output = Self;
        #[inline]
        fn sub(self, rhs: Self) -> Self {
            unsafe { Self(_mm_sub_pd(self.0, rhs.0), _mm_sub_pd(self.1, rhs.1)) }
        }
    }
    impl Mul for F64x4 {
        type Output = Self;
        #[inline]
        fn mul(self, rhs: Self) -> Self {
            unsafe { Self(_mm_mul_pd(self.0, rhs.0), _mm_mul_pd(self.1, rhs.1)) }
        }
    }
    impl Div for F64x4 {
        type Output = Self;
        #[inline]
        fn div(self, rhs: Self) -> Self {
            unsafe { Self(_mm_div_pd(self.0, rhs.0), _mm_div_pd(self.1, rhs.1)) }
        }
    }
    impl Neg for F64x4 {
        type Output = Self;
        #[inline]
        fn neg(self) -> Self {
            unsafe {
                let sign = _mm_set1_pd(-0.0);
                Self(_mm_xor_pd(self.0, sign), _mm_xor_pd(self.1, sign))
            }
        }
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
mod backend {
    use super::*;

    /// Four `f64` lanes as a hand-unrolled scalar quad.
    #[derive(Clone, Copy)]
    pub struct F64x4([f64; 4]);

    /// Lane-wise comparison result.
    #[derive(Clone, Copy)]
    pub struct Mask4([bool; 4]);

    impl F64x4 {
        /// All four lanes set to `v`.
        #[inline]
        #[must_use]
        pub fn splat(v: f64) -> Self {
            Self([v; 4])
        }

        /// Lanes from an array, index = lane.
        #[inline]
        #[must_use]
        pub fn from_array(a: [f64; 4]) -> Self {
            Self(a)
        }

        /// Lanes back to an array.
        #[inline]
        #[must_use]
        pub fn to_array(self) -> [f64; 4] {
            self.0
        }

        /// Load the first four elements of `s` (panics if `s.len() < 4`).
        #[inline]
        #[must_use]
        pub fn load(s: &[f64]) -> Self {
            Self([s[0], s[1], s[2], s[3]])
        }

        /// Store into the first four elements of `s` (panics if too short).
        #[inline]
        pub fn store(self, s: &mut [f64]) {
            s[..4].copy_from_slice(&self.0);
        }

        /// Lane-wise square root.
        #[inline]
        #[must_use]
        pub fn sqrt(self) -> Self {
            Self(self.0.map(f64::sqrt))
        }

        /// Lane-wise absolute value.
        #[inline]
        #[must_use]
        pub fn abs(self) -> Self {
            Self(self.0.map(f64::abs))
        }

        /// Lane-wise `if self < other { self } else { other }` (the exact
        /// SSE2 `minpd` semantics — NOT [`f64::min`], which differs on NaN).
        #[inline]
        #[must_use]
        pub fn min(self, other: Self) -> Self {
            let mut out = [0.0; 4];
            for k in 0..4 {
                out[k] = if self.0[k] < other.0[k] {
                    self.0[k]
                } else {
                    other.0[k]
                };
            }
            Self(out)
        }

        /// Lane-wise `if self > other { self } else { other }` (the exact
        /// SSE2 `maxpd` semantics — NOT [`f64::max`], which differs on NaN).
        #[inline]
        #[must_use]
        pub fn max(self, other: Self) -> Self {
            let mut out = [0.0; 4];
            for k in 0..4 {
                out[k] = if self.0[k] > other.0[k] {
                    self.0[k]
                } else {
                    other.0[k]
                };
            }
            Self(out)
        }

        /// Lane-wise `self < other`.
        #[inline]
        #[must_use]
        pub fn lt(self, other: Self) -> Mask4 {
            Mask4([
                self.0[0] < other.0[0],
                self.0[1] < other.0[1],
                self.0[2] < other.0[2],
                self.0[3] < other.0[3],
            ])
        }

        /// Lane-wise `self <= other`.
        #[inline]
        #[must_use]
        pub fn le(self, other: Self) -> Mask4 {
            Mask4([
                self.0[0] <= other.0[0],
                self.0[1] <= other.0[1],
                self.0[2] <= other.0[2],
                self.0[3] <= other.0[3],
            ])
        }

        /// Lane-wise `self > other`.
        #[inline]
        #[must_use]
        pub fn gt(self, other: Self) -> Mask4 {
            Mask4([
                self.0[0] > other.0[0],
                self.0[1] > other.0[1],
                self.0[2] > other.0[2],
                self.0[3] > other.0[3],
            ])
        }

        /// Lane-wise `self >= other`.
        #[inline]
        #[must_use]
        pub fn ge(self, other: Self) -> Mask4 {
            Mask4([
                self.0[0] >= other.0[0],
                self.0[1] >= other.0[1],
                self.0[2] >= other.0[2],
                self.0[3] >= other.0[3],
            ])
        }

        /// Bitwise lane blend: `a` where the mask lane is set, else `b`.
        #[inline]
        #[must_use]
        pub fn select(mask: Mask4, a: Self, b: Self) -> Self {
            let mut out = [0.0; 4];
            for k in 0..4 {
                out[k] = if mask.0[k] { a.0[k] } else { b.0[k] };
            }
            Self(out)
        }
    }

    impl Add for F64x4 {
        type Output = Self;
        #[inline]
        fn add(self, rhs: Self) -> Self {
            Self([
                self.0[0] + rhs.0[0],
                self.0[1] + rhs.0[1],
                self.0[2] + rhs.0[2],
                self.0[3] + rhs.0[3],
            ])
        }
    }
    impl Sub for F64x4 {
        type Output = Self;
        #[inline]
        fn sub(self, rhs: Self) -> Self {
            Self([
                self.0[0] - rhs.0[0],
                self.0[1] - rhs.0[1],
                self.0[2] - rhs.0[2],
                self.0[3] - rhs.0[3],
            ])
        }
    }
    impl Mul for F64x4 {
        type Output = Self;
        #[inline]
        fn mul(self, rhs: Self) -> Self {
            Self([
                self.0[0] * rhs.0[0],
                self.0[1] * rhs.0[1],
                self.0[2] * rhs.0[2],
                self.0[3] * rhs.0[3],
            ])
        }
    }
    impl Div for F64x4 {
        type Output = Self;
        #[inline]
        fn div(self, rhs: Self) -> Self {
            Self([
                self.0[0] / rhs.0[0],
                self.0[1] / rhs.0[1],
                self.0[2] / rhs.0[2],
                self.0[3] / rhs.0[3],
            ])
        }
    }
    impl Neg for F64x4 {
        type Output = Self;
        #[inline]
        fn neg(self) -> Self {
            Self([-self.0[0], -self.0[1], -self.0[2], -self.0[3]])
        }
    }
}

pub use backend::{F64x4, Mask4};

impl core::fmt::Debug for F64x4 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_tuple("F64x4").field(&self.to_array()).finish()
    }
}

/// Names of the perf-relevant cargo features compiled into this build of
/// `aerothermo-numerics` — recorded by `perf_snapshot` so baselines from
/// incompatible builds are never compared.
#[must_use]
pub fn active_features() -> Vec<&'static str> {
    if cfg!(feature = "simd") {
        vec!["simd"]
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_matches_scalar_lanes() {
        let a = F64x4::from_array([1.5, -2.25, 3.0e8, -7.125e-3]);
        let b = F64x4::from_array([0.75, 4.5, -1.0e-4, 2.0]);
        let (aa, ba) = (a.to_array(), b.to_array());
        for (name, v, f) in [
            (
                "add",
                (a + b).to_array(),
                (|x, y| x + y) as fn(f64, f64) -> f64,
            ),
            ("sub", (a - b).to_array(), |x, y| x - y),
            ("mul", (a * b).to_array(), |x, y| x * y),
            ("div", (a / b).to_array(), |x, y| x / y),
        ] {
            for k in 0..4 {
                assert_eq!(v[k].to_bits(), f(aa[k], ba[k]).to_bits(), "{name} lane {k}");
            }
        }
        let s = a.abs().sqrt().to_array();
        for k in 0..4 {
            assert_eq!(
                s[k].to_bits(),
                aa[k].abs().sqrt().to_bits(),
                "sqrt lane {k}"
            );
        }
        let n = (-a).to_array();
        for k in 0..4 {
            assert_eq!(n[k].to_bits(), (-aa[k]).to_bits(), "neg lane {k}");
        }
    }

    #[test]
    fn min_max_follow_branch_semantics() {
        // min = `if a < b { a } else { b }`, max = `if a > b { a } else { b }`
        // — including NaN (second operand wins) and signed zeros.
        let a = F64x4::from_array([1.0, f64::NAN, 0.0, -3.0]);
        let b = F64x4::from_array([2.0, 5.0, -0.0, f64::NAN]);
        let mn = a.min(b).to_array();
        let mx = a.max(b).to_array();
        let (aa, ba) = (a.to_array(), b.to_array());
        for k in 0..4 {
            let emn = if aa[k] < ba[k] { aa[k] } else { ba[k] };
            let emx = if aa[k] > ba[k] { aa[k] } else { ba[k] };
            assert_eq!(mn[k].to_bits(), emn.to_bits(), "min lane {k}");
            assert_eq!(mx[k].to_bits(), emx.to_bits(), "max lane {k}");
        }
    }

    #[test]
    fn select_is_a_bitwise_blend() {
        // NaN in a discarded lane must not leak through the blend.
        let a = F64x4::from_array([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4::from_array([f64::NAN, -1.0, f64::NAN, -4.0]);
        let picked = F64x4::select(a.gt(F64x4::splat(2.5)), a, b).to_array();
        assert!(picked[0].is_nan());
        assert_eq!(picked[1], -1.0);
        assert_eq!(picked[2], 3.0);
        assert_eq!(picked[3], 4.0);
    }

    #[test]
    fn load_store_roundtrip() {
        let src = [0.1, 0.2, 0.3, 0.4, 0.5];
        let v = F64x4::load(&src[1..]);
        assert_eq!(v.to_array(), [0.2, 0.3, 0.4, 0.5]);
        let mut dst = [0.0; 6];
        v.store(&mut dst[2..]);
        assert_eq!(dst, [0.0, 0.0, 0.2, 0.3, 0.4, 0.5]);
    }
}
