//! Quickstart: the 60-second tour of the CAT toolkit.
//!
//! Computes what a mission engineer asks for first at one entry-trajectory
//! point: the equilibrium-air state behind the bow shock, the stagnation
//! conditions, and the stagnation-point convective heat flux.
//!
//! Run with: `cargo run --release --example quickstart`

use aerothermo::atmosphere::us76::Us76;
use aerothermo::atmosphere::Atmosphere;
use aerothermo::core::heating::convective_fay_riddell_equilibrium;
use aerothermo::core::stagnation::{stagnation_state, standoff_estimate};
use aerothermo::gas::eq_table::air9_table;
use aerothermo::gas::{air9_equilibrium, GasModel};

fn main() {
    // Flight point: 6.7 km/s at 65.5 km on the US76 atmosphere.
    let atm = Us76;
    let h = 65_500.0;
    let v = 6_700.0;
    let rho = atm.density(h);
    let p = atm.pressure(h);
    let t = atm.temperature(h);
    println!("freestream: h = {:.1} km, V = {v} m/s", h / 1000.0);
    println!("            rho = {rho:.3e} kg/m³, p = {p:.2} Pa, T = {t:.1} K");
    println!("            Mach = {:.1}", v / atm.sound_speed(h));

    // Equilibrium air: both the exact solver and the fast table.
    let gas = air9_equilibrium();
    let table = air9_table();

    // Post-shock and stagnation conditions with real-gas chemistry.
    let st = stagnation_state(table, rho, p, v).expect("stagnation state");
    println!("\npost-shock (equilibrium air):");
    println!(
        "            T2 = {:.0} K, p2 = {:.0} Pa, rho2/rho∞ = {:.1}",
        st.t_shock, st.p_shock, st.density_ratio
    );
    println!(
        "stagnation: T0 = {:.0} K, p0 = {:.0} Pa",
        st.t_stag, st.p_stag
    );

    // What is the gas made of at the stagnation point?
    let state = gas.at_tp(st.t_stag, st.p_stag).expect("composition");
    println!("\nstagnation composition (mole fractions):");
    for (sp, x) in gas.mixture().species().iter().zip(&state.mole_fractions) {
        if *x > 1e-4 {
            println!("            {:<4} {x:.4}", sp.name);
        }
    }

    // Shock standoff and stagnation heating for a 0.6 m nose.
    let rn = 0.6;
    let delta = standoff_estimate(rn, st.density_ratio);
    let q = convective_fay_riddell_equilibrium(&gas, table, rho, p, v, rn, 1200.0, 1.4)
        .expect("Fay-Riddell");
    println!("\nfor a {rn} m nose radius:");
    println!("            shock standoff ≈ {:.1} mm", delta * 1000.0);
    println!(
        "            stagnation heating ≈ {:.1} W/cm² (Fay-Riddell, equilibrium)",
        q / 1e4
    );

    // The ideal-gas answer would be very different:
    let e = table.energy(rho, p);
    println!(
        "\nreal-gas effect: γ_eff at the stagnation state = {:.3} (ideal air: 1.4)",
        table.gamma_eff(st.rho_stag, e.max(1e5) + 0.5 * v * v)
    );
}
