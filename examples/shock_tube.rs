//! Shock-tube relaxation and emission: the one-dimensional kinetic study
//! that anchors the real-gas models (the paper's Figs. 7–8 workflow).
//!
//! Marches the two-temperature Park model behind a strong normal shock,
//! reports the relaxation structure, then computes the emitted spectrum of
//! the radiating zone.
//!
//! Run with: `cargo run --release --example shock_tube [velocity_km_s]`

use aerothermo::gas::equilibrium::air9_equilibrium;
use aerothermo::gas::kinetics::park_air9;
use aerothermo::gas::relaxation::RelaxationModel;
use aerothermo::radiation::spectra::spectrum;
use aerothermo::radiation::{wavelength_grid, GasSample};
use aerothermo::solvers::shock1d::{solve, RelaxationProblem};

fn main() {
    let v_km_s: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);

    let gas = air9_equilibrium();
    let set = park_air9(gas.mixture());
    let relax = RelaxationModel::new(gas.mixture().clone());
    let mut y1 = vec![0.0; gas.mixture().len()];
    y1[0] = 0.767;
    y1[1] = 0.233;

    println!("== {v_km_s} km/s shock into 0.1 torr air at 300 K ==");
    let sol = solve(
        &set,
        &relax,
        &RelaxationProblem {
            u1: v_km_s * 1000.0,
            t1: 300.0,
            p1: 13.33,
            y1,
            x_end: 0.05,
        },
    )
    .expect("relaxation march");

    println!("frozen post-shock T = {:.0} K", sol.t_frozen);
    println!("\n  x[mm]      T[K]    Tv[K]   x_N2    x_N     x_e");
    let mut x = 1e-5;
    while x <= 0.05 {
        let p = sol.at(x);
        println!(
            "  {:7.3}  {:7.0}  {:7.0}  {:.3}  {:.3}  {:.2e}",
            p.x * 1000.0,
            p.t,
            p.tv,
            p.x_mole[0],
            p.x_mole[3],
            p.x_mole[8]
        );
        x *= 2.7;
    }
    if let Some(d) = sol.equilibration_distance(0.05) {
        println!("\nT and Tv agree to 5% after {:.1} mm", d * 1000.0);
    }

    // Emission from the radiating zone (where Tv has climbed but the gas is
    // still hot) — the signature a shock-tube spectrometer records.
    let probe = sol.at(0.004);
    println!(
        "\nradiating-zone sample at x = 4 mm: T = {:.0} K, Tv = {:.0} K",
        probe.t, probe.tv
    );
    let names: Vec<&str> = gas.mixture().species().iter().map(|s| s.name).collect();
    let sample = GasSample {
        t: probe.t,
        t_exc: probe.tv,
        densities: names
            .iter()
            .enumerate()
            .map(|(s, n)| ((*n).to_string(), probe.x_mole[s] * probe.n_total))
            .collect(),
    };
    let lam = wavelength_grid(0.3e-6, 1.0e-6, 800);
    let spec = spectrum(&sample, &lam, 1e-9);
    let peak = spec.peak_index();
    println!(
        "strongest emission at {:.1} nm; total volumetric emission {:.3e} W/(m³·sr)",
        lam[peak] * 1e9,
        spec.total_emission()
    );
}
