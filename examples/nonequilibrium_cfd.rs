//! Nonequilibrium blunt-body CFD — the paper's "biggest challenge" demo.
//!
//! Runs the two-temperature reacting Euler solver (loosely coupled Park
//! chemistry) over a small hemisphere at AOTV-class speed and prints the
//! stagnation-line relaxation structure: T vs T_v lag behind the bow shock,
//! progressive O₂/N₂ dissociation toward the body, NO formation.
//!
//! Run with: `cargo run --release --example nonequilibrium_cfd`
//! (takes ~a minute: every hot cell integrates stiff chemistry each step).

use aerothermo::gas::equilibrium::air9_equilibrium;
use aerothermo::gas::kinetics::park_air9;
use aerothermo::gas::relaxation::RelaxationModel;
use aerothermo::grid::bodies::Hemisphere;
use aerothermo::grid::{stretch, StructuredGrid};
use aerothermo::solvers::reacting::{
    FreeStream, ReactingBc, ReactingBcSet, ReactingOptions, ReactingSolver,
};

fn main() {
    let gas = air9_equilibrium();
    let set = park_air9(gas.mixture());
    let relax = RelaxationModel::new(gas.mixture().clone());

    let rn = 0.05;
    let body = Hemisphere::new(rn);
    let dist = stretch::uniform(27);
    let grid = StructuredGrid::blunt_body(&body, 11, 27, &|sb| (0.3 + 0.2 * sb) * rn, &dist);

    let mut y = vec![0.0; gas.mixture().len()];
    y[0] = 0.767;
    y[1] = 0.233;
    let fs = FreeStream {
        y,
        rho: 1.5e-3,
        ux: 5500.0,
        ur: 0.0,
        t: 250.0,
    };
    println!(
        "reacting Euler: hemisphere Rn = {rn} m, V = {} m/s, rho = {} kg/m³",
        fs.ux, fs.rho
    );

    let bc = ReactingBcSet {
        i_lo: ReactingBc::SlipWall,
        i_hi: ReactingBc::Outflow,
        j_lo: ReactingBc::SlipWall,
        j_hi: ReactingBc::Inflow(fs.clone()),
    };
    let opts = ReactingOptions {
        startup_steps: 200,
        ..ReactingOptions::default()
    };
    let mut solver = ReactingSolver::new(&grid, &set, &relax, bc, opts, &fs);
    for block in 0..4 {
        let r = solver.run(130).expect("stable run");
        println!("  after {} steps: residual {r:.3e}", (block + 1) * 130);
    }

    println!("\nstagnation line (wall → freestream):");
    println!("   j      T[K]    Tv[K]    y_N2     y_O2     y_NO     y_O");
    for (j, q) in solver.stagnation_line().iter().enumerate() {
        if j % 2 != 0 {
            continue;
        }
        println!(
            "  {j:2}  {:8.0} {:8.0}  {:.4}  {:.4}   {:.4}  {:.4}",
            q.t, q.tv, q.y[0], q.y[1], q.y[2], q.y[4]
        );
    }

    let line = solver.stagnation_line();
    let j_shock = (0..line.len())
        .rev()
        .find(|&j| line[j].t > 500.0)
        .unwrap_or(0);
    let behind = &line[j_shock.saturating_sub(1)];
    println!(
        "\nbehind the shock: T = {:.0} K, Tv = {:.0} K  (thermal nonequilibrium: Tv lags)",
        behind.t, behind.tv
    );
    println!(
        "at the body:      T = {:.0} K, Tv = {:.0} K, y_O2 = {:.4} (dissociating toward equilibrium)",
        line[1].t, line[1].tv, line[1].y[1]
    );
}
