//! Blunt-body CFD: capture a hypersonic bow shock with the finite-volume
//! solvers and compare the real-gas and ideal-gas shock layers — the
//! paper's Fig. 4/Fig. 9 workflow on a laptop-sized grid.
//!
//! Run with: `cargo run --release --example blunt_body_cfd`

use aerothermo::core::stagnation::standoff_estimate;
use aerothermo::gas::eq_table::air9_table;
use aerothermo::gas::{GasModel, IdealGas};
use aerothermo::grid::bodies::Hemisphere;
use aerothermo::grid::{stretch, StructuredGrid};
use aerothermo::solvers::euler2d::{Bc, BcSet, EulerOptions, EulerSolver};

fn run(gas: &dyn GasModel, label: &str, grid: &StructuredGrid, fs: (f64, f64, f64, f64)) -> f64 {
    let bc = BcSet {
        i_lo: Bc::SlipWall,
        i_hi: Bc::Outflow,
        j_lo: Bc::SlipWall,
        j_hi: Bc::Inflow {
            rho: fs.0,
            ux: fs.1,
            ur: fs.2,
            p: fs.3,
        },
    };
    let opts = EulerOptions {
        cfl: 0.4,
        startup_steps: 400,
        ..EulerOptions::default()
    };
    let mut solver = EulerSolver::new(grid, gas, bc, opts, fs);
    let (steps, ratio) = solver.run(5000, 1e-3).expect("stable Euler run");
    let standoff = solver.standoff(fs.0).unwrap_or(f64::NAN);
    let q = solver.primitive(0, 0);
    println!(
        "  {label:<18} {steps:>5} steps  residual {ratio:.1e}  Δ = {:.1} mm  p0/p∞ = {:.1}",
        standoff * 1000.0,
        q.p / fs.3
    );
    standoff
}

fn main() {
    // Mach 15 at 40 km — hot enough that equilibrium chemistry matters.
    let t_inf = 250.0;
    let p_inf = 287.0;
    let rho_inf = p_inf / (287.05 * t_inf);
    let a_inf = (1.4_f64 * 287.05 * t_inf).sqrt();
    let v_inf = 15.0 * a_inf;
    let fs = (rho_inf, v_inf, 0.0, p_inf);
    println!("Mach 15 hemisphere, Rn = 0.25 m: rho∞ = {rho_inf:.3e} kg/m³, V = {v_inf:.0} m/s");

    let rn = 0.25;
    let body = Hemisphere::new(rn);
    let dist = stretch::uniform(49);
    let grid = StructuredGrid::blunt_body(&body, 25, 49, &|sb| (0.28 + 0.18 * sb) * rn, &dist);

    println!("\nsolver runs:");
    let ideal = IdealGas::air();
    let d_ideal = run(&ideal, "ideal gas γ=1.4", &grid, fs);
    let table = air9_table();
    let d_eq = run(table, "equilibrium air", &grid, fs);

    println!("\nshock standoff:");
    println!("  ideal gas      : Δ/Rn = {:.3}", d_ideal / rn);
    println!("  equilibrium air: Δ/Rn = {:.3}", d_eq / rn);
    println!(
        "  compression    : {:.0}% thinner",
        100.0 * (1.0 - d_eq / d_ideal)
    );

    // Compare against the density-ratio correlation.
    let st_eq = aerothermo::core::stagnation::stagnation_state(table, rho_inf, p_inf, v_inf)
        .expect("stagnation");
    let d_corr = standoff_estimate(rn, st_eq.density_ratio);
    println!(
        "  correlation (ρ-ratio {:.1}): Δ/Rn = {:.3}",
        st_eq.density_ratio,
        d_corr / rn
    );
    println!(
        "\nstagnation temperature: equilibrium {:.0} K vs ideal-gas {:.0} K — the\nreal-gas effect the paper calls the enabling physics of CAT.",
        st_eq.t_stag,
        t_inf * (1.0 + 0.2 * 15.0 * 15.0)
    );
}
