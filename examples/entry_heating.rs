//! Entry-vehicle heating pulse: fly a capsule into an atmosphere and
//! integrate the stagnation-point heating environment — the core
//! design-loop calculation the paper describes for TPS sizing.
//!
//! Two vehicles are flown: a ballistic sample-return capsule into Earth at
//! 11 km/s (convective + Tauber-Sutton radiative) and a Titan probe at
//! 12 km/s (convective; see `fig02_titan_heating` for the CN-layer
//! radiative path).
//!
//! Run with: `cargo run --release --example entry_heating`

use aerothermo::atmosphere::planets::ExponentialAtmosphere;
use aerothermo::atmosphere::trajectory::{
    fly, peak_deceleration, EntryConditions, StopConditions, Vehicle,
};
use aerothermo::atmosphere::us76::Us76;
use aerothermo::core::heating::{heat_load, heat_pulse, radiative_tauber_sutton_earth};
use aerothermo::solvers::blayer::SUTTON_GRAVES_EARTH;

fn main() {
    // --- Earth sample-return capsule ---------------------------------------
    println!("== Earth return capsule: 11 km/s, γE = -9° ==");
    let capsule = Vehicle {
        mass: 80.0,
        area: 0.72,
        cd: 1.1,
        ld: 0.0,
        nose_radius: 0.4,
    };
    let traj = fly(
        &Us76,
        &capsule,
        EntryConditions {
            altitude: 120_000.0,
            velocity: 11_000.0,
            gamma: -9f64.to_radians(),
        },
        StopConditions::default(),
    );
    let pulse = heat_pulse(&traj, capsule.nose_radius, SUTTON_GRAVES_EARTH, |p| {
        radiative_tauber_sutton_earth(p.density, p.velocity, capsule.nose_radius)
    });
    let peak_c = pulse
        .iter()
        .max_by(|a, b| a.q_conv.total_cmp(&b.q_conv))
        .unwrap();
    let peak_r = pulse
        .iter()
        .max_by(|a, b| a.q_rad.total_cmp(&b.q_rad))
        .unwrap();
    let (load_c, load_r) = heat_load(&pulse);
    let peak_g = peak_deceleration(&traj).unwrap();
    println!(
        "  peak convective : {:8.1} W/cm² at t = {:.0} s (h = {:.1} km)",
        peak_c.q_conv / 1e4,
        peak_c.time,
        peak_c.altitude / 1000.0
    );
    println!(
        "  peak radiative  : {:8.1} W/cm² at t = {:.0} s",
        peak_r.q_rad / 1e4,
        peak_r.time
    );
    println!(
        "  heat loads      : {:.1} / {:.1} kJ/cm² (conv/rad)",
        load_c / 1e7,
        load_r / 1e7
    );
    println!(
        "  peak load factor: {:.1} g at V = {:.2} km/s",
        peak_g.deceleration / 9.81,
        peak_g.velocity / 1000.0
    );

    // --- Titan probe ---------------------------------------------------------
    println!("\n== Titan probe: 12 km/s, γE = -32° ==");
    let atm = ExponentialAtmosphere::titan();
    let probe = Vehicle::titan_probe();
    let traj = fly(
        &atm,
        &probe,
        EntryConditions {
            altitude: 450_000.0,
            velocity: 12_000.0,
            gamma: -32f64.to_radians(),
        },
        StopConditions {
            min_velocity: 500.0,
            ..StopConditions::default()
        },
    );
    let pulse = heat_pulse(&traj, probe.nose_radius, 1.7e-4, |_| 0.0);
    let peak = pulse
        .iter()
        .max_by(|a, b| a.q_conv.total_cmp(&b.q_conv))
        .unwrap();
    let (load, _) = heat_load(&pulse);
    println!(
        "  peak convective : {:8.1} W/cm² at t = {:.0} s (h = {:.0} km, V = {:.2} km/s)",
        peak.q_conv / 1e4,
        peak.time,
        peak.altitude / 1000.0,
        peak.velocity / 1000.0
    );
    println!("  heat load       : {:.1} kJ/cm²", load / 1e7);
    println!("  (the CN radiative pulse for this entry: see fig02_titan_heating)");

    // Time history table, decimated.
    println!("\n  t[s]   h[km]  V[km/s]  q_conv[W/cm²]");
    for p in pulse.iter().step_by(12) {
        if p.q_conv > 1e4 {
            println!(
                "  {:5.0}  {:6.1}  {:7.2}  {:10.1}",
                p.time,
                p.altitude / 1000.0,
                p.velocity / 1000.0,
                p.q_conv / 1e4
            );
        }
    }
}
