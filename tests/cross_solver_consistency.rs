//! Cross-crate integration tests: different solution paths through the
//! toolkit must agree on the same physics.

use aerothermo::core::stagnation::{stagnation_state, standoff_estimate};
use aerothermo::gas::eq_table::air9_table;
use aerothermo::gas::equilibrium::air9_equilibrium;
use aerothermo::gas::kinetics::park_air9;
use aerothermo::gas::relaxation::RelaxationModel;
use aerothermo::gas::{GasModel, IdealGas};
use aerothermo::grid::bodies::Hemisphere;
use aerothermo::grid::{stretch, StructuredGrid};
use aerothermo::solvers::euler2d::{Bc, BcSet, EulerOptions, EulerSolver};
use aerothermo::solvers::shock::normal_shock;
use aerothermo::solvers::shock1d::{solve as relax_solve, RelaxationProblem};

/// The relaxation march must land on the state the equilibrium shock solver
/// predicts — kinetics and equilibrium derive from the same partition
/// functions, so their asymptotic states must be identical.
#[test]
fn relaxation_reaches_equilibrium_shock_state() {
    let gas = air9_equilibrium();
    let set = park_air9(gas.mixture());
    let relax = RelaxationModel::new(gas.mixture().clone());
    let mut y1 = vec![0.0; gas.mixture().len()];
    y1[0] = 0.767;
    y1[1] = 0.233;
    let u1 = 9_000.0;
    let t1 = 300.0;
    let p1 = 30.0;
    let sol = relax_solve(
        &set,
        &relax,
        &RelaxationProblem {
            u1,
            t1,
            p1,
            y1,
            x_end: 0.08,
        },
    )
    .unwrap();
    let end = sol.points.last().unwrap();

    // Equilibrium jump for the same upstream state.
    let rho1 = p1
        / (gas
            .mixture()
            .gas_constant(&[0.767, 0.233, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
            * t1);
    let jump = normal_shock(&gas, rho1, p1, u1).unwrap();

    assert!(
        (end.t - jump.t).abs() < 0.12 * jump.t,
        "relaxed T = {} vs equilibrium T = {}",
        end.t,
        jump.t
    );
    assert!(
        (end.u - jump.u).abs() < 0.15 * jump.u,
        "relaxed u = {} vs equilibrium u = {}",
        end.u,
        jump.u
    );
    // Composition agreement on the major species.
    let eq_state = gas.at_trho(jump.t, jump.rho).unwrap();
    for (s, name) in ["N2", "O2", "N", "O"].iter().enumerate() {
        let _ = s;
        let idx = gas.mixture().index_of(name).unwrap();
        let x_relaxed = end.x_mole[idx];
        let x_eq = eq_state.mole_fractions[idx];
        assert!(
            (x_relaxed - x_eq).abs() < 0.08,
            "{name}: relaxed {x_relaxed:.4} vs equilibrium {x_eq:.4}"
        );
    }
}

/// Captured-shock standoff from the Euler solver vs the density-ratio
/// correlation fed by the 0-D stagnation pipeline.
#[test]
fn euler_standoff_matches_correlation() {
    let gas = IdealGas::air();
    let t_inf = 230.0;
    let p_inf = 300.0;
    let rho_inf = p_inf / (287.05 * t_inf);
    let a_inf = (1.4_f64 * 287.05 * t_inf).sqrt();
    let v_inf = 9.0 * a_inf;
    let rn = 0.2;
    let body = Hemisphere::new(rn);
    let dist = stretch::uniform(45);
    let grid = StructuredGrid::blunt_body(&body, 21, 45, &|sb| (0.3 + 0.2 * sb) * rn, &dist);
    let fs = (rho_inf, v_inf, 0.0, p_inf);
    let bc = BcSet {
        i_lo: Bc::SlipWall,
        i_hi: Bc::Outflow,
        j_lo: Bc::SlipWall,
        j_hi: Bc::Inflow {
            rho: fs.0,
            ux: fs.1,
            ur: fs.2,
            p: fs.3,
        },
    };
    let opts = EulerOptions {
        cfl: 0.4,
        startup_steps: 300,
        ..EulerOptions::default()
    };
    let mut solver = EulerSolver::new(&grid, &gas, bc, opts, fs);
    solver.run(3500, 1e-3).expect("stable run");
    let d_cfd = solver.standoff(rho_inf).unwrap();

    let st = stagnation_state(&gas, rho_inf, p_inf, v_inf).unwrap();
    let d_corr = standoff_estimate(rn, st.density_ratio);
    let ratio = d_cfd / d_corr;
    assert!(
        (0.6..1.8).contains(&ratio),
        "CFD standoff {d_cfd:.4} vs correlation {d_corr:.4}"
    );
}

/// The tabulated EOS and the exact equilibrium solver must give the same
/// stagnation state along the whole pipeline.
#[test]
fn table_and_direct_equilibrium_agree_through_shock_pipeline() {
    let gas = air9_equilibrium();
    let table = air9_table();
    let rho_inf = 3e-4;
    let p_inf = 20.0;
    let v = 5_500.0;
    let st_table = stagnation_state(table, rho_inf, p_inf, v).unwrap();
    let st_exact = stagnation_state(&gas, rho_inf, p_inf, v).unwrap();
    assert!(
        (st_table.t_stag - st_exact.t_stag).abs() < 0.06 * st_exact.t_stag,
        "T0: table {} vs exact {}",
        st_table.t_stag,
        st_exact.t_stag
    );
    assert!(
        (st_table.p_stag - st_exact.p_stag).abs() < 0.05 * st_exact.p_stag,
        "p0: table {} vs exact {}",
        st_table.p_stag,
        st_exact.p_stag
    );
}

/// Umbrella-crate re-exports expose a coherent API.
#[test]
fn umbrella_reexports_work() {
    let gas = IdealGas::air();
    assert!((gas.gamma_eff(1.0, 1e5) - 1.4).abs() < 1e-12);
    let r = aerothermo::numerics::constants::R_UNIVERSAL;
    assert!(r > 8314.0 && r < 8315.0);
    let mix = aerothermo::gas::Mixture::new(vec![aerothermo::gas::species::n2()]);
    assert_eq!(mix.len(), 1);
}
