//! Checkpoint/restart contract tests: a snapshot taken mid-run and resumed
//! — in memory or through the on-disk restart file — must continue
//! bitwise-identically to the uninterrupted run, and the run controller
//! must recover from an injected mid-run NaN by rolling back and halving
//! the CFL.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use aerothermo::gas::equilibrium::air9_equilibrium;
use aerothermo::gas::kinetics::park_air9;
use aerothermo::gas::relaxation::RelaxationModel;
use aerothermo::gas::IdealGas;
use aerothermo::grid::bodies::Hemisphere;
use aerothermo::grid::{stretch, StructuredGrid};
use aerothermo::solvers::euler2d::{Bc, BcSet, EulerOptions, EulerSolver};
use aerothermo::solvers::ns2d::{NsSolver, Transport};
use aerothermo::solvers::reacting::{
    FreeStream, ReactingBc, ReactingBcSet, ReactingOptions, ReactingSolver,
};
use aerothermo::solvers::runctl::{
    read_restart, run_controlled, write_restart, RunMeta, RunOptions, Snapshot, Steppable,
};
use proptest::prelude::*;

/// Unique scratch path per call so parallel tests never collide.
fn scratch_path(stem: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("aerothermo-{stem}-{}-{n}.atrc", std::process::id()))
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// M8 hemisphere condition shared by the Euler/NS round-trip tests (the
/// stable configuration from `failure_modes.rs`).
fn hemisphere_setup() -> (StructuredGrid, (f64, f64, f64, f64), BcSet) {
    let t_inf = 230.0;
    let p_inf = 300.0;
    let rho_inf = p_inf / (287.05 * t_inf);
    let v_inf = 8.0 * (1.4_f64 * 287.05 * t_inf).sqrt();
    let body = Hemisphere::new(0.2);
    let dist = stretch::uniform(31);
    let grid = StructuredGrid::blunt_body(&body, 9, 31, &|sb| (0.3 + 0.2 * sb) * 0.2, &dist);
    let fs = (rho_inf, v_inf, 0.0, p_inf);
    let bc = BcSet {
        i_lo: Bc::SlipWall,
        i_hi: Bc::Outflow,
        j_lo: Bc::SlipWall,
        j_hi: Bc::Inflow {
            rho: fs.0,
            ux: fs.1,
            ur: fs.2,
            p: fs.3,
        },
    };
    (grid, fs, bc)
}

/// Drive any `Steppable` both continuously (A) and through a
/// save → disk → restore → resume cycle (B), asserting bitwise equality.
fn assert_bitwise_resume<S: Steppable>(mut a: S, mut b: S, warmup: usize, tail: usize, stem: &str) {
    for _ in 0..warmup {
        a.advance().expect("warmup step");
    }
    let snap = a.save_state();

    // Route the snapshot through the restart file, not just memory: the
    // byte-level round trip is part of the contract under test.
    let path = scratch_path(stem);
    write_restart(&path, &a.meta(), &snap).expect("write restart");
    let (meta, snap2) = read_restart(&path).expect("read restart");
    std::fs::remove_file(&path).ok();
    assert_eq!(meta.tag, a.meta().tag);
    assert_eq!(meta.shape, a.meta().shape);
    assert_eq!(snap2.step, snap.step);
    assert!(bits_equal(&snap2.data, &snap.data), "disk round trip lossy");

    b.restore_state(&snap2).expect("restore into fresh solver");
    for _ in 0..tail {
        a.advance().expect("reference step");
        b.advance().expect("resumed step");
    }
    assert_eq!(a.progress(), b.progress(), "step counters diverged");
    assert!(
        bits_equal(&a.save_state().data, &b.save_state().data),
        "resumed {stem} run is not bitwise-identical to the uninterrupted run"
    );
}

#[test]
fn euler_checkpoint_resume_is_bitwise_identical() {
    let gas = IdealGas::air();
    let (grid, fs, bc) = hemisphere_setup();
    let opts = EulerOptions {
        cfl: 0.4,
        // Snapshot inside the startup window so the resumed run must also
        // reproduce the startup→nominal CFL transition bitwise.
        startup_steps: 50,
        ..EulerOptions::default()
    };
    let a = EulerSolver::new(&grid, &gas, bc, opts.clone(), fs);
    let b = EulerSolver::new(&grid, &gas, bc, opts, fs);
    assert_bitwise_resume(a, b, 40, 30, "euler2d");
}

#[test]
fn ns_checkpoint_resume_is_bitwise_identical() {
    let gas = IdealGas::air();
    let (grid, fs, bc) = hemisphere_setup();
    let opts = EulerOptions {
        cfl: 0.3,
        startup_steps: 50,
        ..EulerOptions::default()
    };
    let a = NsSolver::new(&grid, &gas, bc, opts.clone(), fs, Transport::air(), 1500.0);
    let b = NsSolver::new(&grid, &gas, bc, opts, fs, Transport::air(), 1500.0);
    assert_bitwise_resume(a, b, 35, 25, "ns2d");
}

#[test]
fn reacting_checkpoint_resume_is_bitwise_identical() {
    let gas = air9_equilibrium();
    let set = park_air9(gas.mixture());
    let relax = RelaxationModel::new(gas.mixture().clone());
    let rn = 0.05;
    let body = Hemisphere::new(rn);
    let dist = stretch::uniform(21);
    let grid = StructuredGrid::blunt_body(&body, 9, 21, &|sb| (0.3 + 0.2 * sb) * rn, &dist);
    let mut y = vec![0.0; gas.mixture().len()];
    y[0] = 0.767;
    y[1] = 0.233;
    let fs = FreeStream {
        y,
        rho: 5e-4,
        ux: 5500.0,
        ur: 0.0,
        t: 250.0,
    };
    let bc = ReactingBcSet {
        i_lo: ReactingBc::SlipWall,
        i_hi: ReactingBc::Outflow,
        j_lo: ReactingBc::SlipWall,
        j_hi: ReactingBc::Inflow(fs.clone()),
    };
    let opts = ReactingOptions {
        startup_steps: 150,
        ..ReactingOptions::default()
    };
    let a = ReactingSolver::new(&grid, &set, &relax, bc.clone(), opts.clone(), &fs);
    let b = ReactingSolver::new(&grid, &set, &relax, bc, opts, &fs);
    assert_bitwise_resume(a, b, 25, 15, "reacting");
}

#[test]
fn injected_nan_triggers_rollback_and_cfl_halving() {
    let gas = IdealGas::air();
    let (grid, fs, bc) = hemisphere_setup();
    let opts = EulerOptions {
        cfl: 0.4,
        startup_steps: 30,
        ..EulerOptions::default()
    };
    let mut solver = EulerSolver::new(&grid, &gas, bc, opts, fs);
    let run_opts = RunOptions {
        max_units: 90,
        grace: 30,
        checkpoint_every: 10,
        inject_nan_at: Some(45),
        ..RunOptions::default()
    };
    let outcome = run_controlled(&mut solver, &run_opts)
        .expect("the controller must absorb the injected NaN");
    assert!(outcome.retries >= 1, "no retry recorded: {outcome:?}");
    assert!(outcome.rollbacks >= 1, "no rollback recorded: {outcome:?}");
    assert!(
        outcome.final_cfl_scale < 1.0,
        "CFL must be backed off after a rollback: {outcome:?}"
    );
    assert_eq!(outcome.units, 90, "run must complete after recovery");
    assert!(
        solver.u.as_slice().iter().all(|v| v.is_finite()),
        "state must be clean after rollback recovery"
    );
}

#[test]
fn corrupted_restart_file_is_rejected() {
    let snap = Snapshot {
        step: 12,
        cfl_scale: 0.5,
        data: vec![1.0, 2.5, -3.75, f64::MIN_POSITIVE],
    };
    let meta = RunMeta {
        tag: "euler2d".into(),
        gas: "test".into(),
        shape: (2, 2, 1),
    };
    let path = scratch_path("corrupt");
    write_restart(&path, &meta, &snap).expect("write restart");
    let mut bytes = std::fs::read(&path).expect("read back");
    let last = bytes.len() - 3;
    bytes[last] ^= 0x40; // flip a payload bit
    std::fs::write(&path, &bytes).expect("rewrite");
    let err = read_restart(&path).expect_err("checksum must catch corruption");
    std::fs::remove_file(&path).ok();
    assert!(
        err.to_string().contains("checksum"),
        "expected a checksum error, got: {err}"
    );
}

/// splitmix64: deterministic bit-pattern generator for the property test.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The restart file preserves every f64 payload bit pattern exactly —
    /// including negative zero, subnormals, NaN payloads, and infinities —
    /// plus the step counter and CFL scale.
    #[test]
    fn restart_file_roundtrip_is_bit_exact(
        seed in 0u64..u64::MAX,
        len in 0usize..60,
        step in 0usize..1_000_000,
        cfl_bits in 0u64..u64::MAX,
    ) {
        // Adversarial payload: the special encodings first, then random
        // bit patterns — serialization must not canonicalize any of them.
        let mut bits = vec![
            (-0.0f64).to_bits(),
            f64::NAN.to_bits() | 0xdead,
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            1u64, // smallest subnormal
        ];
        let mut state = seed;
        bits.extend((0..len).map(|_| splitmix64(&mut state)));
        let data: Vec<f64> = bits.iter().map(|b| f64::from_bits(*b)).collect();
        let snap = Snapshot { step, cfl_scale: f64::from_bits(cfl_bits), data };
        let tag = format!("tag{:04x}", seed & 0xffff);
        let meta = RunMeta { tag: tag.clone(), gas: "prop".into(), shape: (bits.len(), 1, 1) };
        let path = scratch_path("prop");
        write_restart(&path, &meta, &snap).unwrap();
        let (meta2, snap2) = read_restart(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(meta2.tag, tag);
        prop_assert_eq!(meta2.shape, meta.shape);
        prop_assert_eq!(snap2.step, step);
        prop_assert_eq!(snap2.cfl_scale.to_bits(), cfl_bits);
        prop_assert_eq!(snap2.data.len(), snap.data.len());
        for (x, y) in snap.data.iter().zip(&snap2.data) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
