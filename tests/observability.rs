//! Observability-stack contract tests: the metrics registry's histogram
//! merge must be order-invariant, the sweep event stream must normalize
//! bitwise-identically across worker counts (with monotone heartbeats),
//! and the flight recorder must dump exactly the last N step records when
//! a run dies.

use aerothermo::numerics::json::{self, Value};
use aerothermo::numerics::metrics::Histogram;
use aerothermo::solvers::euler2d::{Bc, BcSet, EulerOptions, EulerSolver};
use aerothermo::solvers::flight::Trigger;
use aerothermo::solvers::runctl::{run_recorded, RunOptions};
use aerothermo_sweep::events::normalize;
use aerothermo_sweep::spec::{FlowSpec, GasSpec, LevelSpec};
use aerothermo_sweep::{run_sweep, CaseSpec, SweepOptions, SweepPlan};
use proptest::prelude::*;

fn scratch_dir(stem: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("aerothermo-obs-{stem}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------------
// Histogram merge order-invariance (the property that makes multi-thread
// metric aggregation deterministic).
// ---------------------------------------------------------------------------

/// Deterministic sample stream from a seed (splitmix64): the vendored
/// proptest subset has scalar strategies only, so the vector of timing
/// samples is derived rather than sampled directly.
fn derive_samples(seed: u64, n: usize) -> Vec<u64> {
    let mut x = seed;
    (0..n)
        .map(|_| {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            // Span nanoseconds from sub-bucket-0 to ~18 minutes so every
            // histogram octave gets exercised.
            z % 1_000_000_000_000
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Shard-wise accumulation then merge, in any shard order, must give
    /// the same histogram (and therefore the same quantiles) as observing
    /// the whole stream into one histogram.
    #[test]
    fn histogram_merge_is_order_invariant(
        seed in 0u64..u64::MAX,
        n in 1usize..400,
        shards in 1usize..8,
    ) {
        let samples = derive_samples(seed, n);
        let mut reference = Histogram::new();
        for &s in &samples {
            reference.observe_ns(s);
        }

        // Round-robin the stream over `shards` shard histograms.
        let mut parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (k, &s) in samples.iter().enumerate() {
            parts[k % shards].observe_ns(s);
        }

        let mut forward = Histogram::new();
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = Histogram::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }

        prop_assert!(forward == reference, "forward merge != direct observation");
        prop_assert!(backward == reference, "merge must commute");
        for q in [0.5, 0.9, 0.95, 0.99] {
            prop_assert_eq!(forward.quantile_ns(q), reference.quantile_ns(q));
        }
        prop_assert_eq!(forward.mean_ns(), reference.mean_ns());
        prop_assert!(forward.max_ns >= forward.quantile_ns(0.99));
    }
}

// ---------------------------------------------------------------------------
// Sweep event stream: worker-count determinism + heartbeat contract.
// ---------------------------------------------------------------------------

/// Eight instant correlation cases — enough for 4 workers to interleave
/// event emission aggressively.
fn correlation_plan() -> SweepPlan {
    let mut plan = SweepPlan::new("events_test");
    for k in 0..8 {
        plan.push(CaseSpec::new(
            format!("c{k:02}"),
            GasSpec::Air9,
            LevelSpec::Correlation { k_sg: 1.74e-4 },
            FlowSpec::new(
                1e-4,
                5_000.0 + 500.0 * f64::from(k),
                220.0,
                f64::NAN,
                0.5,
                1500.0,
            ),
        ));
    }
    plan
}

#[test]
fn event_streams_normalize_identically_across_worker_counts() {
    let dir = scratch_dir("events");
    let mut normalized = Vec::new();
    for workers in [1usize, 4] {
        let path = dir.join(format!("w{workers}.jsonl"));
        let path = path.to_str().unwrap().to_string();
        let report = run_sweep(
            &correlation_plan(),
            &SweepOptions {
                workers,
                events_path: Some(path.clone()),
                ..SweepOptions::default()
            },
        )
        .expect("sweep runs");
        assert!(report.all_green());
        let raw = std::fs::read_to_string(&path).expect("events file exists");

        // Raw-stream contract: dense monotone seq, schema tag on the first
        // line, >= 2 heartbeats with nondecreasing t_secs.
        let mut hb_times = Vec::new();
        for (k, line) in raw.lines().enumerate() {
            let v = json::parse(line).unwrap_or_else(|e| panic!("line {}: {e:?}", k + 1));
            assert_eq!(
                v.get("seq").and_then(Value::as_f64),
                Some(k as f64),
                "seq must be dense"
            );
            if k == 0 {
                assert_eq!(v.get("event").and_then(Value::as_str), Some("plan_started"));
                assert_eq!(
                    v.get("schema").and_then(Value::as_str),
                    Some("aerothermo-sweep-events-v1")
                );
            }
            if v.get("event").and_then(Value::as_str) == Some("heartbeat") {
                hb_times.push(v.get("t_secs").and_then(Value::as_f64).unwrap());
            }
        }
        assert!(
            hb_times.len() >= 2,
            "start + final heartbeats must always be emitted, got {}",
            hb_times.len()
        );
        assert!(
            hb_times.windows(2).all(|w| w[1] >= w[0]),
            "heartbeat t_secs must be monotone: {hb_times:?}"
        );

        normalized.push(normalize(&raw).expect("stream normalizes"));
    }
    assert_eq!(
        normalized[0], normalized[1],
        "normalized event streams must be bitwise identical for 1 vs 4 workers"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Flight recorder: exactly the last N steps survive in the black box.
// ---------------------------------------------------------------------------

fn hemisphere_euler() -> EulerSolver<'static> {
    use aerothermo::grid::bodies::Hemisphere;
    use aerothermo::grid::{stretch, StructuredGrid};
    use std::sync::OnceLock;
    static GRID: OnceLock<StructuredGrid> = OnceLock::new();
    static GAS: OnceLock<aerothermo::gas::IdealGas> = OnceLock::new();
    let t_inf = 230.0;
    let p_inf = 300.0;
    let rho_inf = p_inf / (287.05 * t_inf);
    let v_inf = 8.0 * (1.4_f64 * 287.05 * t_inf).sqrt();
    let grid = GRID.get_or_init(|| {
        let body = Hemisphere::new(0.2);
        let dist = stretch::uniform(31);
        StructuredGrid::blunt_body(&body, 9, 31, &|sb| (0.3 + 0.2 * sb) * 0.2, &dist)
    });
    let gas = GAS.get_or_init(aerothermo::gas::IdealGas::air);
    let fs = (rho_inf, v_inf, 0.0, p_inf);
    let bc = BcSet {
        i_lo: Bc::SlipWall,
        i_hi: Bc::Outflow,
        j_lo: Bc::SlipWall,
        j_hi: Bc::Inflow {
            rho: fs.0,
            ux: fs.1,
            ur: fs.2,
            p: fs.3,
        },
    };
    let opts = EulerOptions {
        cfl: 0.4,
        startup_steps: 30,
        ..EulerOptions::default()
    };
    EulerSolver::new(grid, gas, bc, opts, fs)
}

#[test]
fn flight_recorder_dumps_exactly_last_n_steps_on_injected_nan() {
    let mut solver = hemisphere_euler();
    let ring = 8;
    let run_opts = RunOptions {
        max_units: 90,
        grace: 30,
        checkpoint_every: 10,
        inject_nan_at: Some(45),
        flight_ring: ring,
        ..RunOptions::default()
    };
    let (out, pm) = run_recorded(&mut solver, &run_opts);
    let out = out.expect("controller absorbs the injected NaN");
    assert_eq!(out.units, 90);
    let pm = pm.expect("an injection drill must leave a black box");
    assert_eq!(pm.trigger, Trigger::NanInjection);
    assert!(pm.error.is_none(), "the run recovered: no terminal error");
    assert_eq!(pm.capacity, ring);
    assert_eq!(
        pm.records.len(),
        ring,
        "the ring must hold exactly the last {ring} step records"
    );
    // The surviving records are the *last* N: contiguous tail ending at
    // the final unit, every residual/CFL finite.
    let units: Vec<usize> = pm.records.iter().map(|r| r.unit).collect();
    assert_eq!(*units.last().unwrap(), out.units);
    assert!(
        units.windows(2).all(|w| w[1] >= w[0]),
        "records must be in step order: {units:?}"
    );
    assert!(units[0] > 45, "only post-recovery steps fit in a ring of 8");
    for r in &pm.records {
        assert!(r.residual.is_finite() && r.cfl_scale > 0.0);
    }
}

#[test]
fn terminal_failure_writes_blackbox_naming_the_failing_step() {
    let dir = scratch_dir("blackbox");
    let path = dir.join("euler.json");
    let mut solver = hemisphere_euler();
    // Zero retries: the injected NaN is recoverable in principle but the
    // budget is exhausted immediately, so the run dies at the injection.
    let run_opts = RunOptions {
        max_units: 90,
        grace: 30,
        checkpoint_every: 10,
        inject_nan_at: Some(45),
        max_retries: 0,
        flight_ring: 16,
        blackbox_path: Some(path.clone()),
        ..RunOptions::default()
    };
    let (out, pm) = run_recorded(&mut solver, &run_opts);
    let err = out.expect_err("zero retries cannot absorb the NaN");
    let pm = pm.expect("a dying run must leave a black box");
    assert_eq!(pm.trigger, Trigger::SolverError);
    assert_eq!(pm.error.as_deref(), Some(err.to_string().as_str()));
    assert!(
        pm.failing_unit >= 45,
        "failing unit must name the injection neighborhood, got {}",
        pm.failing_unit
    );

    // The dump on disk parses and matches the in-memory post-mortem.
    let text = std::fs::read_to_string(&path).expect("blackbox written");
    let doc = json::parse(&text).expect("blackbox JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("aerothermo-blackbox-v1")
    );
    assert_eq!(
        doc.get("trigger").and_then(Value::as_str),
        Some("solver_error")
    );
    assert_eq!(
        doc.get("failing_unit").and_then(Value::as_f64),
        Some(pm.failing_unit as f64)
    );
    let records = doc.get("records").unwrap().as_array().unwrap();
    assert_eq!(records.len(), pm.records.len());
    let last = records.last().unwrap();
    assert_eq!(last.get("event").and_then(Value::as_str), Some("fatal"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_sweep_case_carries_its_postmortem() {
    // The inject_fault divergence drill synthesizes a flight-recorder
    // post-mortem per failed case, which must ride through the pool into
    // the case record.
    let mut plan = SweepPlan::new("pm_test");
    let mut case = CaseSpec::new(
        "bad",
        GasSpec::IdealAir,
        LevelSpec::Synthetic {
            work_ms: 0.0,
            outcome: "ok".to_string(),
        },
        FlowSpec::new(1e-4, 7_000.0, 200.0, 10.0, 0.5, 1500.0),
    );
    case.inject_fault = true;
    plan.push(case);
    let report = run_sweep(&plan, &SweepOptions::default()).expect("sweep runs");
    let bad = &report.outcomes[0];
    assert_eq!(bad.status, aerothermo_sweep::CaseStatus::Failed);
    let pm = bad
        .postmortem
        .as_deref()
        .expect("failed case has black box");
    let doc = json::parse(pm).expect("attached post-mortem parses");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("aerothermo-blackbox-v1")
    );
}
