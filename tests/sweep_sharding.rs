//! Distributed-sharding acceptance: a plan split across N independent
//! shard processes and federated back together must produce a store
//! bitwise identical (order-normalized) to the single-process sweep —
//! for every shard count, for both partition strategies, and across a
//! halt-mid-shard + resume cycle.

use aerothermo_sweep::spec::{FlowSpec, GasSpec, LevelSpec};
use aerothermo_sweep::store::load_records;
use aerothermo_sweep::{
    federate, federate_to_store, normalized_fingerprint, run_sweep, shard_plan, shard_store_path,
    CaseSpec, ShardSpec, ShardStrategy, SweepOptions, SweepPlan,
};

/// The CI smoke plan: 4 instant correlation cases + 2 real VSL solves on
/// two gas models, so cost-balanced sharding has uneven weights to chew.
fn smoke_plan() -> SweepPlan {
    let air = |rho: f64, u: f64| FlowSpec::new(rho, u, 220.0, f64::NAN, 0.5, 1500.0);
    let titan = |rho: f64, u: f64| FlowSpec::new(rho, u, 165.0, f64::NAN, 0.6, 1800.0);
    let corr_air = LevelSpec::Correlation { k_sg: 0.000174 };
    let corr_titan = LevelSpec::Correlation { k_sg: 0.00017 };
    let vsl = LevelSpec::Vsl {
        n_points: 20,
        radiating: false,
    };
    let titan_gas = GasSpec::Titan { ch4: 0.05 };
    SweepPlan {
        name: "sharding_smoke".into(),
        cases: vec![
            CaseSpec::new(
                "corr-air9-a",
                GasSpec::Air9,
                corr_air.clone(),
                air(3e-5, 9000.0),
            ),
            CaseSpec::new("corr-air9-b", GasSpec::Air9, corr_air, air(1e-4, 7000.0)),
            CaseSpec::new(
                "corr-titan-a",
                titan_gas.clone(),
                corr_titan.clone(),
                titan(3e-5, 10000.0),
            ),
            CaseSpec::new(
                "corr-titan-b",
                titan_gas.clone(),
                corr_titan,
                titan(1e-4, 8000.0),
            ),
            CaseSpec::new("vsl-air9", GasSpec::Air9, vsl.clone(), air(1e-4, 7000.0)),
            CaseSpec::new("vsl-titan", titan_gas, vsl, titan(1e-4, 8000.0)),
        ],
    }
}

struct TempRoot(std::path::PathBuf);

impl TempRoot {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("aerothermo-shard-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        Self(root)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_str().unwrap().to_string()
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Single-process reference store for the smoke plan.
fn direct_store(dirs: &TempRoot) -> String {
    let path = dirs.path("direct.jsonl");
    let report = run_sweep(
        &smoke_plan(),
        &SweepOptions {
            workers: 2,
            store_path: Some(path.clone()),
            ..SweepOptions::default()
        },
    )
    .expect("direct sweep runs");
    assert!(report.all_green(), "reference sweep must be green");
    path
}

/// Run shard `i/n` of the smoke plan into its stamped store, with
/// per-shard sweep options under the caller's control.
fn run_shard(dirs: &TempRoot, spec: ShardSpec, halt_after: Option<usize>, resume: bool) -> String {
    let slice = shard_plan(&smoke_plan(), &spec).expect("shard slices");
    let store = shard_store_path(&dirs.path("shard.jsonl"), &spec);
    run_sweep(
        &slice,
        &SweepOptions {
            workers: 1,
            store_path: Some(store.clone()),
            halt_after_cases: halt_after,
            resume,
            ..SweepOptions::default()
        },
    )
    .expect("shard sweep runs");
    store
}

fn fingerprint_of(path: &str) -> Vec<(String, String)> {
    normalized_fingerprint(&load_records(path).expect("store parses"))
}

#[test]
fn federated_shards_match_single_process_for_every_count_and_strategy() {
    let plan = smoke_plan();
    let dirs = TempRoot::new("counts");
    let reference = fingerprint_of(&direct_store(&dirs));

    for strategy in [ShardStrategy::RoundRobin, ShardStrategy::CostBalanced] {
        for count in [1usize, 2, 4] {
            let tag = format!("{}-{count}", strategy.name());
            let stores: Vec<String> = (0..count)
                .map(|i| {
                    let spec = ShardSpec::new(i, count, strategy).unwrap();
                    run_shard(&dirs, spec, None, false)
                })
                .collect();
            let out = dirs.path(&format!("federated-{tag}.jsonl"));
            let report = federate_to_store(&plan, &stores, &out).expect("federation succeeds");
            assert!(report.complete(), "{tag}: {}", report.summary());
            assert_eq!(report.merged, plan.cases.len(), "{tag}");
            assert_eq!(
                fingerprint_of(&out),
                reference,
                "{tag}: federated store diverged from single-process run"
            );
            for store in stores {
                std::fs::remove_file(store).unwrap();
            }
        }
    }
}

#[test]
fn halted_shard_resumes_then_federates_bitwise_identical() {
    let plan = smoke_plan();
    let dirs = TempRoot::new("resume");
    let reference = fingerprint_of(&direct_store(&dirs));
    let strategy = ShardStrategy::CostBalanced;
    let shard0 = ShardSpec::new(0, 2, strategy).unwrap();
    let shard1 = ShardSpec::new(1, 2, strategy).unwrap();

    // Shard 0 halts after one case — a mid-shard interruption — then a
    // second process resumes it through the store's skip logic.
    let partial = run_shard(&dirs, shard0, Some(1), false);
    let n_partial = load_records(&partial).expect("partial parses").len();
    let slice_len = shard_plan(&plan, &shard0).unwrap().cases.len();
    assert!(
        n_partial >= 1 && n_partial < slice_len,
        "halt budget must leave shard 0 genuinely partial ({n_partial}/{slice_len})"
    );
    let store0 = run_shard(&dirs, shard0, None, true);
    let store1 = run_shard(&dirs, shard1, None, false);

    let (records, report) = federate(&plan, &[store0, store1]).expect("federation succeeds");
    assert!(report.complete(), "{}", report.summary());
    assert_eq!(
        normalized_fingerprint(&records),
        reference,
        "halt + resume must not change a single federated bit"
    );
}

#[test]
fn missing_shard_surfaces_as_gaps_not_success() {
    let plan = smoke_plan();
    let dirs = TempRoot::new("gaps");
    let spec = ShardSpec::new(0, 2, ShardStrategy::RoundRobin).unwrap();
    let store0 = run_shard(&dirs, spec, None, false);
    let (_, report) = federate(&plan, &[store0]).expect("partial federation still reports");
    assert!(
        !report.complete(),
        "one missing shard must not read as complete"
    );
    let expected_missing = plan.cases.len() - shard_plan(&plan, &spec).unwrap().cases.len();
    assert_eq!(report.gaps.len(), expected_missing);
}
