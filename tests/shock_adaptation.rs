//! Integration test: the solution-adaptive regridding loop — coarse Euler
//! solve → shock locus → fitted grid → resolve — improves how much of the
//! grid the shock layer occupies without moving the captured standoff.

use aerothermo::gas::IdealGas;
use aerothermo::grid::adapt::{blunt_body_adapted, shock_envelope, shock_layer_fill};
use aerothermo::grid::bodies::Hemisphere;
use aerothermo::grid::quality::assess;
use aerothermo::grid::{stretch, StructuredGrid};
use aerothermo::solvers::euler2d::{Bc, BcSet, EulerOptions, EulerSolver};

fn shock_distances(solver: &EulerSolver<'_>, rho_inf: f64) -> Vec<f64> {
    let m = solver.grid_metrics();
    (0..solver.nci())
        .map(|i| {
            solver.shock_index(i, rho_inf, 1.5).map_or(f64::NAN, |j| {
                let dx = m.xc[(i, j)] - m.xc[(i, 0)];
                let dr = m.rc[(i, j)] - m.rc[(i, 0)];
                (dx * dx + dr * dr).sqrt()
            })
        })
        .collect()
}

#[test]
fn adaptation_concentrates_points_in_shock_layer() {
    let gas = IdealGas::air();
    let t_inf = 230.0;
    let p_inf = 300.0;
    let rho_inf = p_inf / (287.05 * t_inf);
    let a_inf = (1.4_f64 * 287.05 * t_inf).sqrt();
    let v_inf = 8.0 * a_inf;
    let fs = (rho_inf, v_inf, 0.0, p_inf);
    let rn = 0.2;
    let body = Hemisphere::new(rn);
    let bc = BcSet {
        i_lo: Bc::SlipWall,
        i_hi: Bc::Outflow,
        j_lo: Bc::SlipWall,
        j_hi: Bc::Inflow {
            rho: fs.0,
            ux: fs.1,
            ur: fs.2,
            p: fs.3,
        },
    };
    let opts = EulerOptions {
        cfl: 0.4,
        startup_steps: 300,
        ..EulerOptions::default()
    };

    // Pass 1: generous (wasteful) envelope.
    let dist = stretch::uniform(41);
    let coarse = StructuredGrid::blunt_body(&body, 17, 41, &|sb| (0.5 + 0.3 * sb) * rn, &dist);
    let mut s1 = EulerSolver::new(&coarse, &gas, bc, opts.clone(), fs);
    s1.run(3000, 1e-3).expect("stable run");
    let d1 = shock_distances(&s1, rho_inf);
    let env1: Vec<f64> = (0..17)
        .map(|i| (0.5 + 0.3 * i as f64 / 16.0) * rn)
        .collect();
    let fill1 = shock_layer_fill(&d1, &env1);
    let standoff1 = s1.standoff(rho_inf).expect("pass-1 shock");

    // Pass 2: shock-fitted envelope.
    let env2 = shock_envelope(&d1, 0.35);
    let adapted = blunt_body_adapted(&body, &env2, &dist);
    assert!(assess(&adapted).acceptable(), "adapted grid quality");
    let mut s2 = EulerSolver::new(&adapted, &gas, bc, opts, fs);
    s2.run(3000, 1e-3).expect("stable run");
    let d2 = shock_distances(&s2, rho_inf);
    let fill2 = shock_layer_fill(&d2, &env2);
    let standoff2 = s2.standoff(rho_inf).expect("pass-2 shock");

    // Adaptation payoff: shock layer occupies a much larger grid fraction.
    assert!(
        fill2 > 1.3 * fill1,
        "fill should improve: pass1 {fill1:.3}, pass2 {fill2:.3}"
    );
    assert!(fill2 > 0.5, "adapted fill = {fill2:.3}");
    // Physics unchanged: standoff agrees between the grids.
    assert!(
        (standoff1 - standoff2).abs() < 0.35 * standoff1,
        "standoff drift: {standoff1:.4} vs {standoff2:.4}"
    );
}
