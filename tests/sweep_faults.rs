//! Sweep-engine fault isolation: a divergent case exhausts its retry
//! budget and degrades to a `Failed` record, panics stay confined to
//! their case, and only `--strict` semantics turn damage into a non-zero
//! exit code.

use aerothermo_sweep::report::STRICT_EXIT_CODE;
use aerothermo_sweep::spec::{CaseSpec, FlowSpec, GasSpec, LevelSpec};
use aerothermo_sweep::{run_sweep, CaseStatus, SweepOptions, SweepPlan};

fn flow() -> FlowSpec {
    FlowSpec::new(1e-4, 7_000.0, 220.0, f64::NAN, 0.5, 1500.0)
}

fn correlation(id: &str) -> CaseSpec {
    CaseSpec::new(
        id,
        GasSpec::Air9,
        LevelSpec::Correlation { k_sg: 1.74e-4 },
        flow(),
    )
}

#[test]
fn injected_divergence_degrades_to_a_failed_record() {
    let mut plan = SweepPlan::new("fault_drill");
    plan.push(correlation("good-a"));
    let mut bad = correlation("injected");
    bad.inject_fault = true;
    bad.max_retries = 2;
    plan.push(bad).push(correlation("good-b"));

    let report = run_sweep(&plan, &SweepOptions::default()).expect("sweep survives the fault");

    // The healthy cases are untouched by their neighbor's failure.
    for id in ["good-a", "good-b"] {
        let o = report.outcome(id).expect("healthy case recorded");
        assert_eq!(o.status, CaseStatus::Completed);
        assert!(o.metric("q_conv_w_m2").unwrap() > 0.0);
    }

    // The injected case burned its whole retry budget and recorded the
    // typed solver error.
    let failed = report.outcome("injected").expect("failed case recorded");
    assert_eq!(failed.status, CaseStatus::Failed);
    assert_eq!(failed.retries, 2, "retry budget exhausted before failing");
    let err = failed.error.as_deref().expect("failure carries its error");
    assert!(
        err.contains("injected"),
        "error names the injected fault: {err}"
    );

    // Aggregate: 1 failure flagged, exit 0 by default, strict exit code
    // under --strict.
    let counts = report.counts();
    assert_eq!(counts.completed, 2);
    assert_eq!(counts.failed, 1);
    assert!(!report.all_green());
    assert_eq!(report.exit_code(false), 0, "failures degrade, not abort");
    assert_eq!(report.exit_code(true), STRICT_EXIT_CODE);

    // The failure surfaces in the report JSON's audit section so report
    // consumers see it without scanning per-case metrics.
    let json = report.to_json();
    assert!(json.contains("\"audit\": \"case_outcome\""));
    assert!(json.contains("\"all_green\": false"));
}

#[test]
fn panicking_case_is_isolated_from_the_pool() {
    let mut plan = SweepPlan::new("panic_drill");
    plan.push(correlation("before"));
    plan.push(CaseSpec::new(
        "boom",
        GasSpec::IdealAir,
        LevelSpec::Synthetic {
            work_ms: 1.0,
            outcome: "panic".to_string(),
        },
        flow(),
    ))
    .push(correlation("after"));

    let report = run_sweep(
        &plan,
        &SweepOptions {
            workers: 2,
            ..SweepOptions::default()
        },
    )
    .expect("a panicking case must not take down the sweep");

    let boom = report.outcome("boom").unwrap();
    assert_eq!(boom.status, CaseStatus::Failed);
    assert!(
        boom.error.as_deref().unwrap().contains("panic"),
        "panic payload preserved: {:?}",
        boom.error
    );
    assert_eq!(
        report.outcome("before").unwrap().status,
        CaseStatus::Completed
    );
    assert_eq!(
        report.outcome("after").unwrap().status,
        CaseStatus::Completed
    );
}

#[test]
fn every_failure_mode_lands_in_one_report() {
    // ok + recoverable-fail + panic in one plan: the report tallies each
    // terminal status without any case contaminating another.
    let mut plan = SweepPlan::new("mixed_drill");
    for (id, outcome) in [("s-ok", "ok"), ("s-fail", "fail"), ("s-panic", "panic")] {
        let mut c = CaseSpec::new(
            id,
            GasSpec::IdealAir,
            LevelSpec::Synthetic {
                work_ms: 1.0,
                outcome: outcome.to_string(),
            },
            flow(),
        );
        c.max_retries = 1;
        plan.push(c);
    }
    let report = run_sweep(
        &SweepPlan {
            name: plan.name.clone(),
            cases: plan.cases.clone(),
        },
        &SweepOptions {
            workers: 3,
            ..SweepOptions::default()
        },
    )
    .expect("mixed sweep completes");
    let counts = report.counts();
    assert_eq!(counts.completed, 1);
    assert_eq!(counts.failed, 2);
    assert_eq!(report.outcome("s-fail").unwrap().retries, 1);
    assert_eq!(report.exit_code(true), STRICT_EXIT_CODE);
}
