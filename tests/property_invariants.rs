//! Property-based tests (proptest) on the core physical invariants.
//!
//! These sweep random thermodynamic states and shock strengths; every
//! sample must satisfy conservation, positivity, the entropy condition, and
//! internal consistency between the independently implemented paths.

use aerothermo::gas::eq_table::air9_table;
use aerothermo::gas::equilibrium::air9_equilibrium;
use aerothermo::gas::kinetics::park_air9;
use aerothermo::gas::species::Element;
use aerothermo::gas::{GasModel, IdealGas};
use aerothermo::radiation::planck::{e2, e3, planck_lambda};
use aerothermo::solvers::shock::{normal_shock, perfect_gas_jump};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Equilibrium air at any (T, p): normalized mass, charge neutrality,
    /// N:O nuclei ratio preserved, enthalpy above internal energy.
    #[test]
    fn equilibrium_air_invariants(
        t in 250.0_f64..18_000.0,
        log10_p in 0.5_f64..5.7,
    ) {
        let gas = air9_equilibrium();
        let p = 10f64.powf(log10_p);
        let st = gas.at_tp(t, p).unwrap();

        let ysum: f64 = st.mass_fractions.iter().sum();
        prop_assert!((ysum - 1.0).abs() < 1e-7, "Σy = {}", ysum);
        prop_assert!(st.mass_fractions.iter().all(|y| *y >= -1e-12));

        let mut qsum = 0.0;
        let mut qabs = 1e-300;
        let mut n_nuc = 0.0;
        let mut o_nuc = 0.0;
        for (sp, n) in gas.mixture().species().iter().zip(&st.number_densities) {
            qsum += f64::from(sp.charge) * n;
            qabs += f64::from(sp.charge.abs()) * n;
            n_nuc += f64::from(sp.atoms_of(Element::N)) * n;
            o_nuc += f64::from(sp.atoms_of(Element::O)) * n;
        }
        prop_assert!(qsum.abs() / qabs < 1e-5, "charge imbalance");
        prop_assert!((n_nuc / o_nuc - 3.76).abs() < 0.01, "N/O = {}", n_nuc / o_nuc);
        prop_assert!(st.enthalpy > st.energy);
        prop_assert!(st.density > 0.0 && st.pressure > 0.0);
    }

    /// Normal shocks in a perfect gas: entropy must rise, pressure jump
    /// positive, downstream subsonic, and the general-EOS solver must match
    /// the closed form.
    #[test]
    fn shock_entropy_condition(m1 in 1.1_f64..24.0, gamma in 1.1_f64..1.66) {
        let (p_ratio, rho_ratio, _t_ratio, m2) = perfect_gas_jump(m1, gamma);
        prop_assert!(p_ratio > 1.0);
        prop_assert!(rho_ratio > 1.0 && rho_ratio < (gamma + 1.0) / (gamma - 1.0) + 1e-9);
        prop_assert!(m2 < 1.0);
        // Entropy: p2/p1 · (ρ1/ρ2)^γ > 1.
        let s_jump = p_ratio * rho_ratio.powf(-gamma);
        prop_assert!(s_jump > 1.0, "entropy violated: {}", s_jump);

        // General solver agreement.
        let gas = IdealGas { gamma, r: 287.0 };
        let t1 = 250.0;
        let p1 = 500.0;
        let rho1 = p1 / (gas.r * t1);
        let a1 = (gamma * gas.r * t1).sqrt();
        let st = normal_shock(&gas, rho1, p1, m1 * a1).unwrap();
        prop_assert!((st.p / p1 - p_ratio).abs() / p_ratio < 1e-5);
        prop_assert!((st.rho / rho1 - rho_ratio).abs() / rho_ratio < 1e-5);
    }

    /// The tabulated equilibrium EOS tracks the direct solver within a few
    /// percent across its range.
    #[test]
    fn eq_table_tracks_direct_solver(
        t in 400.0_f64..14_000.0,
        log10_rho in -5.5_f64..0.5,
    ) {
        let gas = air9_equilibrium();
        let table = air9_table();
        let rho = 10f64.powf(log10_rho);
        let st = gas.at_trho(t, rho).unwrap();
        let p_tab = table.pressure(rho, st.energy);
        let t_tab = table.temperature(rho, st.energy);
        prop_assert!(
            (p_tab - st.pressure).abs() / st.pressure < 0.10,
            "p: {} vs {}", p_tab, st.pressure
        );
        prop_assert!(
            (t_tab - t).abs() / t < 0.10,
            "T: {} vs {}", t_tab, t
        );
    }

    /// Kinetics: any composition, any temperature pair — production rates
    /// conserve mass and charge exactly.
    #[test]
    fn kinetics_conservation(
        t in 1_000.0_f64..30_000.0,
        tv in 300.0_f64..30_000.0,
        seed in 0u64..1_000_000,
    ) {
        let gas = air9_equilibrium();
        let set = park_air9(gas.mixture());
        // Deterministic pseudo-random concentrations from the seed.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let conc: Vec<f64> = (0..9).map(|_| 1e-6 + 1e-3 * next()).collect();
        let mut wdot = vec![0.0; 9];
        set.production_rates(t, tv, &conc, &mut wdot);
        let mass: f64 = wdot
            .iter()
            .zip(gas.mixture().species())
            .map(|(w, s)| w * s.molar_mass)
            .sum();
        let scale: f64 = wdot
            .iter()
            .zip(gas.mixture().species())
            .map(|(w, s)| (w * s.molar_mass).abs())
            .sum::<f64>()
            .max(1e-300);
        prop_assert!(mass.abs() / scale < 1e-6, "mass leak {}", mass / scale);
        let charge: f64 = wdot
            .iter()
            .zip(gas.mixture().species())
            .map(|(w, s)| w * f64::from(s.charge))
            .sum();
        let cscale: f64 = wdot
            .iter()
            .zip(gas.mixture().species())
            .map(|(w, s)| (w * f64::from(s.charge)).abs())
            .sum::<f64>()
            .max(1e-300);
        prop_assert!(charge.abs() / cscale < 1e-6, "charge leak");
    }

    /// Second law across an equilibrium-air shock: the mixture entropy
    /// (from the same partition functions as everything else) must rise.
    #[test]
    fn entropy_rises_across_equilibrium_shock(
        v in 2_000.0_f64..9_000.0,
        log10_rho in -5.0_f64..-3.0,
    ) {
        let gas = air9_equilibrium();
        let rho1 = 10f64.powf(log10_rho);
        let t1 = 250.0;
        let p1 = {
            let st = gas.at_trho(t1, rho1).unwrap();
            st.pressure
        };
        let jump = aerothermo::solvers::shock::normal_shock(&gas, rho1, p1, v).unwrap();
        let pre = gas.at_trho(t1, rho1).unwrap();
        let post = gas.at_trho(jump.t, jump.rho).unwrap();
        let s1 = gas.mixture().entropy(t1, p1, &pre.mass_fractions);
        let s2 = gas.mixture().entropy(jump.t, jump.p, &post.mass_fractions);
        prop_assert!(s2 > s1, "entropy fell across the shock: {} -> {}", s1, s2);
    }

    /// Oblique-shock consistency: θ(β(θ)) roundtrips and the weak shock is
    /// entropy-increasing with subsonic normal component downstream.
    #[test]
    fn oblique_shock_properties(
        m1 in 1.5_f64..20.0,
        theta_frac in 0.05_f64..0.75,
    ) {
        use aerothermo::solvers::shock::{beta_from_theta, oblique_shock};
        // Pick θ as a fraction of the maximum deflection to stay attached.
        // First find an upper bound on deflection via a coarse scan.
        let mut max_defl = 0.0_f64;
        for k in 1..200 {
            let b = (1.0 / m1).asin() + (std::f64::consts::FRAC_PI_2 - (1.0 / m1).asin())
                * f64::from(k) / 200.0;
            if b < std::f64::consts::FRAC_PI_2 {
                let (th, ..) = oblique_shock(m1, b, 1.4);
                max_defl = max_defl.max(th);
            }
        }
        let theta = theta_frac * max_defl;
        if theta > 1e-4 {
            let beta = beta_from_theta(m1, theta, 1.4).unwrap();
            let (th2, p_ratio, rho_ratio, _m2) = oblique_shock(m1, beta, 1.4);
            prop_assert!((th2 - theta).abs() < 1e-7);
            prop_assert!(p_ratio > 1.0 && rho_ratio > 1.0);
            // Entropy condition.
            prop_assert!(p_ratio * rho_ratio.powf(-1.4) > 1.0);
        }
    }

    /// Gas-model thermodynamic consistency for the ideal gas across its
    /// parameter space: roundtrips and positivity.
    #[test]
    fn ideal_gas_roundtrips(
        gamma in 1.05_f64..1.8,
        rho in 1e-6_f64..10.0,
        p in 1e-2_f64..1e7,
    ) {
        let gas = IdealGas { gamma, r: 287.05 };
        let e = gas.energy(rho, p);
        prop_assert!(e > 0.0);
        prop_assert!((gas.pressure(rho, e) - p).abs() / p < 1e-12);
        prop_assert!(gas.sound_speed(rho, e) > 0.0);
        prop_assert!(gas.enthalpy(rho, e) > e);
    }

    /// Radiation primitives: Planck positivity/monotonicity in T and the
    /// exponential-integral ordering 0 ≤ E₃ ≤ E₂ ≤ 1 for x ≥ 0.
    #[test]
    fn radiation_primitives(
        lambda_nm in 150.0_f64..2_000.0,
        t in 500.0_f64..30_000.0,
        x in 0.0_f64..50.0,
    ) {
        let lam = lambda_nm * 1e-9;
        let b = planck_lambda(lam, t);
        prop_assert!(b >= 0.0);
        prop_assert!(planck_lambda(lam, t * 1.2) >= b);
        let v2 = e2(x);
        let v3 = e3(x);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&v2));
        prop_assert!(v3 <= v2 + 1e-12 && v3 >= 0.0);
    }
}
