//! Heating-correlation cross-check across the entry-velocity envelope:
//! Sutton-Graves, first-principles Fay-Riddell (equilibrium transport), and
//! the full VSL solution must track each other over 4–8 km/s — three
//! fidelity levels, one physics.

use aerothermo::core::heating::{convective_fay_riddell_equilibrium, convective_sutton_graves};
use aerothermo::gas::eq_table::air9_table;
use aerothermo::gas::equilibrium::air9_equilibrium;
use aerothermo::solvers::blayer::SUTTON_GRAVES_EARTH;
use aerothermo::solvers::vsl::{solve as vsl_solve, VslProblem};

#[test]
fn three_fidelity_levels_agree_over_the_envelope() {
    let gas = air9_equilibrium();
    let table = air9_table();
    let rho_inf = 2.5e-4;
    let t_inf = 240.0_f64;
    let p_inf = {
        let st = gas.at_trho(t_inf.max(600.0), rho_inf).unwrap();
        rho_inf * 8314.462618 / st.molar_mass * t_inf
    };
    let rn = 0.5;
    let t_wall = 1200.0;

    for v in [4000.0_f64, 5500.0, 7000.0] {
        let q_sg = convective_sutton_graves(rho_inf, v, rn, SUTTON_GRAVES_EARTH);
        let q_fr =
            convective_fay_riddell_equilibrium(&gas, table, rho_inf, p_inf, v, rn, t_wall, 1.4)
                .unwrap();
        let q_vsl = vsl_solve(
            &gas,
            &VslProblem {
                u_inf: v,
                rho_inf,
                t_inf,
                nose_radius: rn,
                t_wall,
                n_points: 40,
                radiating: false,
            },
        )
        .unwrap()
        .q_conv;

        // All three within a factor 3 of the Sutton-Graves anchor.
        for (name, q) in [("Fay-Riddell", q_fr), ("VSL", q_vsl)] {
            let r = q / q_sg;
            assert!(
                (0.33..3.0).contains(&r),
                "V = {v}: {name}/SG = {r:.2} (q = {q:.3e}, SG = {q_sg:.3e})"
            );
        }
        // And the V³ scaling holds for each method between sweep points
        // (checked cumulatively below).
    }

    // Velocity-scaling exponent of the VSL result: q ∝ V^n with n ≈ 3 ± 1.
    let q_lo = vsl_solve(
        &gas,
        &VslProblem {
            u_inf: 4000.0,
            rho_inf,
            t_inf,
            nose_radius: rn,
            t_wall,
            n_points: 40,
            radiating: false,
        },
    )
    .unwrap()
    .q_conv;
    let q_hi = vsl_solve(
        &gas,
        &VslProblem {
            u_inf: 8000.0,
            rho_inf,
            t_inf,
            nose_radius: rn,
            t_wall,
            n_points: 40,
            radiating: false,
        },
    )
    .unwrap()
    .q_conv;
    let n = (q_hi / q_lo).ln() / (8000.0_f64 / 4000.0).ln();
    assert!((2.0..4.2).contains(&n), "VSL velocity exponent = {n:.2}");
}
