//! Flat-plate laminar boundary layer: the thin-layer NS solver against the
//! Blasius/Eckert references — the classic viscous-code acceptance test.

use aerothermo::gas::IdealGas;
use aerothermo::grid::{Geometry, StructuredGrid};
use aerothermo::numerics::Field2;
use aerothermo::solvers::euler2d::{Bc, BcSet, EulerOptions};
use aerothermo::solvers::ns2d::{NsSolver, Transport};

fn plate_grid(ni: usize, nj: usize, lx: f64, ly: f64, beta: f64) -> StructuredGrid {
    // Uniform in x, tanh-clustered toward the wall in y.
    let ys = aerothermo::grid::stretch::tanh_one_sided(nj, beta);
    let x = Field2::from_fn(ni, nj, |i, _| lx * i as f64 / (ni - 1) as f64);
    let r = Field2::from_fn(ni, nj, |_, j| ly * ys[j]);
    StructuredGrid {
        x,
        r,
        geometry: Geometry::Planar,
    }
}

#[test]
fn blasius_skin_friction_and_heating() {
    let gas = IdealGas::air();
    let t_inf = 300.0;
    let p_inf = 2000.0;
    let rho_inf = p_inf / (287.05 * t_inf);
    let a_inf = (1.4_f64 * 287.05 * t_inf).sqrt();
    let m_inf = 2.0;
    let v_inf = m_inf * a_inf;
    let mu_inf = aerothermo::gas::transport::sutherland_air(t_inf);

    // Plate length for Re_L ≈ 1.3e5 (safely laminar), BL thickness at the
    // end δ ≈ 5·L/√Re_L ≈ 0.014·L.
    let lx = 0.3;
    let re_l = rho_inf * v_inf * lx / mu_inf;
    assert!(re_l > 5e4 && re_l < 5e5, "Re_L = {re_l:.3e}");
    let ly = 0.035 * lx * (1.3e5 / re_l).sqrt().max(1.0);

    let grid = plate_grid(49, 49, lx, ly, 3.0);
    let fs = (rho_inf, v_inf, 0.0, p_inf);
    let bc = BcSet {
        i_lo: Bc::Inflow {
            rho: fs.0,
            ux: fs.1,
            ur: fs.2,
            p: fs.3,
        },
        i_hi: Bc::Outflow,
        j_lo: Bc::SlipWall, // inviscid part; no-slip enters viscously
        j_hi: Bc::Inflow {
            rho: fs.0,
            ux: fs.1,
            ur: fs.2,
            p: fs.3,
        },
    };
    // Near-adiabatic wall: recovery temperature at M2 ≈ T∞(1+0.18·M²)·…
    // use an isothermal wall at the recovery value so heating ≈ 0 and the
    // velocity profile is clean Blasius-with-Mach-2-correction.
    let t_wall = t_inf * (1.0 + 0.85 * 0.2 * m_inf * m_inf);
    let opts = EulerOptions {
        cfl: 0.5,
        startup_steps: 400,
        ..EulerOptions::default()
    };
    let mut solver = NsSolver::new(&grid, &gas, bc, opts, fs, Transport::air(), t_wall);
    solver.run(20_000, 1e-9).expect("stable run");

    // Skin-friction law: c_f·√Re_x = 0.664 (Blasius; compressibility at
    // M2 with C ≈ 1 changes this by ≲ 10%). Probe the mid-plate stations
    // where the leading-edge singularity and outflow have no influence.
    let mut checked = 0;
    for i in [16usize, 24, 32, 40] {
        let m = solver.inviscid.grid_metrics();
        let x = m.xc[(i, 0)];
        let tau = solver.wall_shear(i);
        let re_x = rho_inf * v_inf * x / mu_inf;
        let cf = tau / (0.5 * rho_inf * v_inf * v_inf);
        let cf_re = cf * re_x.sqrt();
        assert!(
            (cf_re - 0.664).abs() < 0.25,
            "station {i} (x = {x:.3}): c_f·√Re_x = {cf_re:.3}"
        );
        checked += 1;
    }
    assert_eq!(checked, 4);

    // Boundary-layer thickness growth ∝ √x: δ(x₂)/δ(x₁) ≈ √(x₂/x₁).
    let delta_at = |i: usize| -> f64 {
        let m = solver.inviscid.grid_metrics();
        // The weak leading-edge shock lowers the edge velocity slightly;
        // measure δ against the local edge maximum.
        let u_edge = (0..solver.inviscid.ncj())
            .map(|j| solver.inviscid.primitive(i, j).ux)
            .fold(0.0_f64, f64::max);
        for j in 0..solver.inviscid.ncj() {
            let q = solver.inviscid.primitive(i, j);
            if q.ux > 0.99 * u_edge {
                return m.rc[(i, j)];
            }
        }
        f64::NAN
    };
    let d1 = delta_at(16);
    let d2 = delta_at(40);
    let m = solver.inviscid.grid_metrics();
    let expect = (m.xc[(40, 0)] / m.xc[(16, 0)]).sqrt();
    assert!(
        (d2 / d1 - expect).abs() < 0.35 * expect,
        "δ growth {:.3} vs √x {:.3}",
        d2 / d1,
        expect
    );

    // Near-recovery wall: heating magnitude small relative to the cold-wall
    // reference at the same station.
    let q_mid = solver.wall_heat_flux(24).abs();
    let q_cold_ref = {
        // Eckert flat-plate estimate with a 300 K wall.
        let h_aw = 1004.5 * t_wall;
        let h_w = 1004.5 * 300.0;
        aerothermo::solvers::blayer::flat_plate_heating(
            rho_inf,
            mu_inf,
            v_inf,
            m.xc[(24, 0)],
            h_aw,
            h_w,
            0.72,
        )
    };
    assert!(
        q_mid < 0.5 * q_cold_ref,
        "recovery wall should nearly null the heating: {q_mid:.3e} vs cold-wall {q_cold_ref:.3e}"
    );
}
