//! Failure-injection tests: unphysical or out-of-envelope inputs must come
//! back as `Err` values with context — not panics, not NaN-poisoned
//! answers.

use aerothermo::gas::equilibrium::{air9_equilibrium, titan_equilibrium};
use aerothermo::gas::kinetics::park_air9;
use aerothermo::gas::relaxation::RelaxationModel;
use aerothermo::gas::{IdealGas, Mixture};
use aerothermo::solvers::shock::normal_shock;
use aerothermo::solvers::shock1d::{solve as relax_solve, RelaxationProblem};
use aerothermo::solvers::vsl::{solve as vsl_solve, VslProblem};

#[test]
fn unstable_cfl_reports_divergence_not_a_hang() {
    use aerothermo::grid::bodies::Hemisphere;
    use aerothermo::grid::{stretch, StructuredGrid};
    use aerothermo::numerics::telemetry::SolverError;
    use aerothermo::solvers::euler2d::{Bc, BcSet, EulerOptions, EulerSolver};

    let gas = IdealGas::air();
    let t_inf = 230.0;
    let p_inf = 300.0;
    let rho_inf = p_inf / (287.05 * t_inf);
    let v_inf = 8.0 * (1.4_f64 * 287.05 * t_inf).sqrt();
    let body = Hemisphere::new(0.2);
    let dist = stretch::uniform(31);
    let grid = StructuredGrid::blunt_body(&body, 9, 31, &|sb| (0.3 + 0.2 * sb) * 0.2, &dist);
    let fs = (rho_inf, v_inf, 0.0, p_inf);
    let bc = BcSet {
        i_lo: Bc::SlipWall,
        i_hi: Bc::Outflow,
        j_lo: Bc::SlipWall,
        j_hi: Bc::Inflow {
            rho: fs.0,
            ux: fs.1,
            ur: fs.2,
            p: fs.3,
        },
    };
    // CFL 2.0 is beyond the explicit stability limit: the residual grows
    // geometrically and the monitor's growth criterion must cut the run
    // off — not spin to the iteration cap or grind on NaN fields. (Still
    // higher CFL blows up to NaN before the growth test arms and returns
    // `NonFinite` instead; 2.0 sits in the clean-divergence band.)
    let opts = EulerOptions {
        cfl: 2.0,
        startup_steps: 0,
        ..EulerOptions::default()
    };
    let mut solver = EulerSolver::new(&grid, &gas, bc, opts, fs);
    let err = solver
        .run(100_000, 1e-12)
        .expect_err("CFL 2.0 cannot converge");
    match err {
        SolverError::Diverged { iter, residual } => {
            assert!(
                iter < 2_000,
                "divergence must be detected early, not at iter {iter}"
            );
            assert!(
                residual.is_finite(),
                "Diverged carries the offending residual"
            );
        }
        other => panic!("expected Diverged, got {other}"),
    }
    // Even a failed run leaves its residual history observable.
    assert!(
        solver
            .telemetry
            .histories()
            .iter()
            .any(|(name, h)| name == "density_residual" && !h.is_empty()),
        "telemetry must retain the residual history of the failed run"
    );
}

#[test]
fn subsonic_freestream_rejected_by_shock_solver() {
    let gas = IdealGas::air();
    let err = normal_shock(&gas, 1.2, 101_325.0, 50.0);
    assert!(err.is_err(), "subsonic flow has no shock solution");
}

#[test]
fn vsl_rejects_subsonic_entry() {
    let gas = air9_equilibrium();
    let problem = VslProblem {
        u_inf: 200.0, // subsonic
        rho_inf: 1e-4,
        t_inf: 250.0,
        nose_radius: 0.5,
        t_wall: 1000.0,
        n_points: 24,
        radiating: false,
    };
    let res = vsl_solve(&gas, &problem);
    assert!(res.is_err(), "VSL must refuse a subsonic freestream");
    let msg = res.unwrap_err().to_string();
    assert!(msg.contains("shock"), "error should carry context: {msg}");
}

#[test]
fn relaxation_rejects_wrong_composition_length() {
    let gas = air9_equilibrium();
    let set = park_air9(gas.mixture());
    let relax = RelaxationModel::new(gas.mixture().clone());
    let res = relax_solve(
        &set,
        &relax,
        &RelaxationProblem {
            u1: 8000.0,
            t1: 300.0,
            p1: 50.0,
            y1: vec![1.0, 0.0], // wrong length
            x_end: 0.01,
        },
    );
    assert!(res.is_err());
}

#[test]
fn temperature_inversion_fails_gracefully_out_of_range() {
    use aerothermo::gas::species::{n2, o2};
    let mix = Mixture::new(vec![n2(), o2()]);
    let y = [0.767, 0.233];
    // Energy far beyond anything reachable below the 200 000 K bracket cap.
    let res = mix.temperature_from_energy(1e12, &y, 1000.0);
    assert!(res.is_err());
    // Negative energy equally impossible.
    let res2 = mix.temperature_from_energy(-1e9, &y, 1000.0);
    assert!(res2.is_err());
}

#[test]
fn equilibrium_range_errors_are_reported_not_panicked() {
    // A temperature of 5 K is far outside the validated envelope; the solver
    // must either converge legitimately or return Err — never panic.
    let gas = titan_equilibrium(0.05);
    match gas.at_tp(5.0, 1e5) {
        Ok(st) => {
            // If it does converge, the result must still be sane.
            assert!(st.density.is_finite() && st.density > 0.0);
        }
        Err(err) => {
            let msg = err.to_string();
            assert!(msg.contains("equilibrium"), "context: {msg}");
        }
    }
}

#[test]
fn root_finder_reports_missing_bracket() {
    use aerothermo::numerics::roots::{brent, RootError};
    let res = brent(|x| x * x + 1.0, -2.0, 2.0, 1e-10);
    assert!(matches!(res, Err(RootError::NoBracket { .. })));
}

#[test]
fn tridiagonal_rejects_inconsistent_dimensions() {
    use aerothermo::numerics::tridiag::solve_tridiag;
    let mut d = vec![1.0, 2.0, 3.0];
    let res = solve_tridiag(&[0.0, 1.0], &[1.0, 1.0, 1.0], &[1.0, 1.0, 0.0], &mut d);
    assert!(res.is_err());
}

#[test]
fn stiff_integrator_reports_newton_failure_on_pathological_system() {
    use aerothermo::numerics::ode::{stiff_integrate, AdaptiveOptions, OdeError};
    // Derivative blows up non-smoothly: y' = 1/(1−y), y → 1 at x = 0.5.
    let sys = |_x: f64, y: &[f64], d: &mut [f64]| {
        d[0] = 1.0 / (1.0 - y[0]);
    };
    let mut y = vec![0.0];
    let res = stiff_integrate(
        &sys,
        0.0,
        10.0,
        &mut y,
        &AdaptiveOptions {
            rtol: 1e-8,
            atol: 1e-12,
            h0: 1e-3,
            hmin: 1e-13,
            ..Default::default()
        },
        |_, _| {},
    );
    // y reaches the singularity at x = 0.5 (y = 1 − √(1−2x)): the marcher
    // must stop with an error, not loop or emit NaN.
    assert!(
        matches!(
            res,
            Err(OdeError::NewtonFailure(_)
                | OdeError::StepUnderflow(_)
                | OdeError::TooManySteps(_))
        ),
        "expected failure, got {res:?} with y = {y:?}"
    );
}
