//! Sweep-engine determinism: per-case results must be bitwise independent
//! of the worker count and of scheduling order, and a killed sweep must
//! resume from its result store without re-running completed cases.

use aerothermo_sweep::spec::{FlowSpec, GasSpec, LevelSpec};
use aerothermo_sweep::store::load_records;
use aerothermo_sweep::{
    normalized_fingerprint, run_sweep, CaseStatus, ScheduleOrder, SweepOptions, SweepPlan,
    SweepReport,
};

/// 12 physics cases mixing instant correlations with real VSL solves on
/// two gas models — enough spread that a scheduling-dependent bug (shared
/// warm cache, counter bleed, work stealing) has somewhere to show up.
fn twelve_case_plan() -> SweepPlan {
    let flows: Vec<FlowSpec> = [(3e-5, 9_000.0), (1e-4, 7_000.0), (3e-4, 5_500.0)]
        .iter()
        .map(|&(rho, v)| FlowSpec::new(rho, v, 220.0, f64::NAN, 0.5, 1500.0))
        .collect();
    let plan = SweepPlan::cartesian(
        "determinism_12",
        &[GasSpec::Air9, GasSpec::Titan { ch4: 0.05 }],
        &[
            LevelSpec::Correlation { k_sg: 1.74e-4 },
            LevelSpec::Vsl {
                n_points: 20,
                radiating: false,
            },
        ],
        &flows,
    );
    assert_eq!(plan.cases.len(), 12);
    plan.validate().expect("valid plan");
    plan
}

fn run_with(workers: usize, order: ScheduleOrder) -> SweepReport {
    run_sweep(
        &twelve_case_plan(),
        &SweepOptions {
            workers,
            order,
            ..SweepOptions::default()
        },
    )
    .expect("sweep runs")
}

/// Everything scheduling-independent about an outcome: status, retries,
/// bitwise metrics, and the thread-attributed kernel counters. Wall time
/// and worker index are the only legitimately nondeterministic fields —
/// exactly what [`normalized_fingerprint`] captures (it is the shared
/// helper the service determinism drill compares stores with, so report
/// and store comparisons use one definition of "identical").
fn fingerprint(r: &SweepReport) -> Vec<(String, String)> {
    normalized_fingerprint(&r.outcomes)
}

#[test]
fn worker_count_does_not_change_results() {
    let serial = run_with(1, ScheduleOrder::CheapestFirst);
    let pooled = run_with(4, ScheduleOrder::CheapestFirst);
    assert!(serial.all_green(), "12-case plan must complete serially");
    assert!(
        pooled.all_green(),
        "12-case plan must complete on 4 workers"
    );
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&pooled),
        "per-case results must be bitwise identical across worker counts"
    );
    // Every case must actually have produced a heating number.
    for o in &serial.outcomes {
        let q = o
            .metric("q_conv_w_m2")
            .expect("each level reports q_conv_w_m2");
        assert!(q.is_finite() && q > 0.0, "{}: q = {q}", o.id);
    }
}

#[test]
fn schedule_order_does_not_change_results() {
    let cheapest = run_with(3, ScheduleOrder::CheapestFirst);
    let plan_order = run_with(3, ScheduleOrder::PlanOrder);
    assert_eq!(fingerprint(&cheapest), fingerprint(&plan_order));
}

#[test]
fn store_is_order_normalized_across_worker_counts() {
    let dir = std::env::temp_dir().join(format!("sweep-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut stores = Vec::new();
    for workers in [1, 4] {
        let path = dir.join(format!("w{workers}.jsonl"));
        let path = path.to_str().unwrap().to_string();
        let report = run_sweep(
            &twelve_case_plan(),
            &SweepOptions {
                workers,
                store_path: Some(path.clone()),
                ..SweepOptions::default()
            },
        )
        .expect("sweep runs");
        assert!(report.all_green());
        // The JSONL lands in completion order (nondeterministic with 4
        // workers); normalized by case ID the record set must be identical.
        let records = load_records(&path).expect("store parses");
        assert_eq!(records.len(), 12);
        stores.push(normalized_fingerprint(&records));
    }
    assert_eq!(stores[0], stores[1]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn halted_sweep_resumes_without_rerunning_completed_cases() {
    let dir = std::env::temp_dir().join(format!("sweep-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("resume.jsonl").to_str().unwrap().to_string();

    // First run: killed after 4 case records (workers = 1 makes the cut
    // deterministic).
    let first = run_sweep(
        &twelve_case_plan(),
        &SweepOptions {
            workers: 1,
            store_path: Some(store.clone()),
            halt_after_cases: Some(4),
            ..SweepOptions::default()
        },
    )
    .expect("halted sweep still reports");
    assert!(first.halted);
    assert!(!first.all_green(), "a halted sweep is not green");
    assert_eq!(first.outcomes.len(), 4);
    assert_eq!(load_records(&store).unwrap().len(), 4);

    // Resume: the 4 completed cases come back as Resumed records (not
    // re-executed, not re-written), the other 8 run now.
    let second = run_sweep(
        &twelve_case_plan(),
        &SweepOptions {
            workers: 2,
            store_path: Some(store.clone()),
            resume: true,
            ..SweepOptions::default()
        },
    )
    .expect("resumed sweep");
    assert!(second.all_green(), "resumed sweep completes the plan");
    assert_eq!(second.outcomes.len(), 12);
    let resumed = second
        .outcomes
        .iter()
        .filter(|o| o.status == CaseStatus::Resumed)
        .count();
    assert_eq!(resumed, 4, "exactly the killed run's cases are resumed");

    // The store holds each case exactly once: 4 from the first run + 8
    // appended by the resume.
    let records = load_records(&store).unwrap();
    assert_eq!(records.len(), 12);
    let mut ids: Vec<&str> = records.iter().map(|o| o.id.as_str()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len(),
        12,
        "no case recorded twice across the kill/resume"
    );

    // Resumed results carry the first run's metrics bitwise.
    for o in second
        .outcomes
        .iter()
        .filter(|o| o.status == CaseStatus::Resumed)
    {
        let original = first.outcome(&o.id).expect("resumed case ran first");
        let a: Vec<(String, u64)> = o
            .metrics
            .iter()
            .map(|(k, v)| (k.clone(), v.to_bits()))
            .collect();
        let b: Vec<(String, u64)> = original
            .metrics
            .iter()
            .map(|(k, v)| (k.clone(), v.to_bits()))
            .collect();
        assert_eq!(a, b, "{}", o.id);
    }
    std::fs::remove_dir_all(&dir).ok();
}
