//! Integration tests for the in-situ physics auditors.
//!
//! The auditors' unit tests (crates/solvers/src/audit.rs) exercise the
//! grading constructors on synthetic numbers; these tests drive the real
//! audit entry points through real solvers: a uniform freestream must pass
//! every audit at machine precision, a wall that swallows the incoming
//! stream must trip the mass-flux budget, and a corrupted conserved state
//! must trip the positivity audits.

use aerothermo::numerics::telemetry::{AuditSeverity, SolverError};
use aerothermo::solvers::audit;
use aerothermo::solvers::euler2d::{Bc, BcSet, EulerOptions, EulerSolver};
use aerothermo::{gas::IdealGas, grid::Geometry, grid::StructuredGrid};
use proptest::prelude::*;

fn uniform_solver(
    grid: &StructuredGrid,
    gas: &IdealGas,
    fs: (f64, f64, f64, f64),
    bc: BcSet,
) -> EulerSolver<'static> {
    // The solver borrows grid and gas; leak them so the helper can return
    // it (tests only — a few hundred bytes per case).
    let grid = Box::leak(Box::new(grid.clone()));
    let gas = Box::leak(Box::new(*gas));
    EulerSolver::new(grid, gas, bc, EulerOptions::default(), fs)
}

fn all_inflow(fs: (f64, f64, f64, f64)) -> BcSet {
    let inflow = Bc::Inflow {
        rho: fs.0,
        ux: fs.1,
        ur: fs.2,
        p: fs.3,
    };
    BcSet {
        i_lo: inflow,
        i_hi: inflow,
        j_lo: inflow,
        j_hi: inflow,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// A uniform freestream on a uniform grid is an exact steady solution:
    /// every flux budget must close to machine precision and every
    /// positivity audit must pass, for any physically sensible state.
    #[test]
    fn uniform_freestream_passes_all_audits(
        rho in 1e-3_f64..1.0,
        u in 50.0_f64..3000.0,
        log10_p in 1.0_f64..5.0,
    ) {
        let gas = IdealGas::air();
        let grid = StructuredGrid::rectangle(9, 7, 1.0, 0.7, Geometry::Planar);
        let fs = (rho, u, 0.3 * u, 10f64.powf(log10_p));
        let solver = uniform_solver(&grid, &gas, fs, all_inflow(fs));

        let findings = audit::audit_euler(&solver, 0, true);
        prop_assert!(!findings.is_empty());
        for f in &findings {
            prop_assert!(
                f.severity == AuditSeverity::Pass,
                "audit {} graded {} (value {:.3e} > threshold {:.3e}): {}",
                f.audit, f.severity.name(), f.value, f.threshold, f.detail
            );
            if f.audit.ends_with("_flux_budget") {
                prop_assert!(
                    f.value < 1e-12,
                    "{} imbalance {:.3e} above machine precision",
                    f.audit, f.value
                );
            }
        }
    }
}

/// A stream blown into a slip wall cannot leave the domain: the mass-flux
/// budget must flag the imbalance — hard once the solve claims
/// convergence, soft (Warn) while it is still a transient.
#[test]
fn swallowed_stream_trips_mass_budget() {
    let gas = IdealGas::air();
    let grid = StructuredGrid::rectangle(9, 7, 1.0, 0.7, Geometry::Planar);
    let fs = (0.1, 800.0, 0.0, 5_000.0);
    let bc = BcSet {
        i_lo: Bc::Inflow {
            rho: fs.0,
            ux: fs.1,
            ur: fs.2,
            p: fs.3,
        },
        i_hi: Bc::SlipWall,
        j_lo: Bc::SlipWall,
        j_hi: Bc::SlipWall,
    };
    let solver = uniform_solver(&grid, &gas, fs, bc);

    let converged = audit::audit_euler(&solver, 100, true);
    let mass = converged
        .iter()
        .find(|f| f.audit == "mass_flux_budget")
        .expect("mass budget audited");
    assert_eq!(
        mass.severity,
        AuditSeverity::Fail,
        "swallowed stream at convergence must hard-fail: value {:.3e}",
        mass.value
    );
    assert!(mass.value > 0.05, "imbalance {:.3e}", mass.value);
    assert!(matches!(
        audit::escalate(&converged),
        Err(SolverError::AuditFailed { ref audit, .. }) if audit == "mass_flux_budget"
    ));

    // The same imbalance during the transient is survivable: Warn, not Fail.
    let transient = audit::audit_euler(&solver, 100, false);
    let mass_t = transient
        .iter()
        .find(|f| f.audit == "mass_flux_budget")
        .unwrap();
    assert_eq!(mass_t.severity, AuditSeverity::Warn);
    assert!(audit::escalate(&transient).is_ok());
}

/// Corrupting the conserved state must trip the positivity auditors on the
/// raw variables (the primitive decoder floors exactly these violations).
#[test]
fn corrupted_state_trips_positivity() {
    let gas = IdealGas::air();
    let grid = StructuredGrid::rectangle(9, 7, 1.0, 0.7, Geometry::Planar);
    let fs = (0.1, 800.0, 0.0, 5_000.0);

    // Negative total energy ⇒ negative internal energy at that cell.
    let mut solver = uniform_solver(&grid, &gas, fs, all_inflow(fs));
    solver.u.vector_mut(3, 2)[3] = -1.0;
    let findings = audit::audit_euler(&solver, 7, false);
    let e = findings
        .iter()
        .find(|f| f.audit == "internal_energy_positivity")
        .expect("internal energy audited");
    assert_eq!(e.severity, AuditSeverity::Fail);
    assert!(e.detail.contains("(3, 2)"), "detail: {}", e.detail);

    // Negative density.
    let mut solver = uniform_solver(&grid, &gas, fs, all_inflow(fs));
    solver.u.vector_mut(1, 1)[0] = -1e-3;
    let findings = audit::audit_euler(&solver, 7, false);
    let rho = findings
        .iter()
        .find(|f| f.audit == "density_positivity")
        .expect("density audited");
    assert_eq!(rho.severity, AuditSeverity::Fail);

    // Positivity failures escalate even during transients.
    assert!(matches!(
        audit::escalate(&findings),
        Err(SolverError::AuditFailed { .. })
    ));
}
