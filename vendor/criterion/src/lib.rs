//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the benchmark surface the workspace uses: `black_box`,
//! `Criterion::bench_function`, `benchmark_group`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is a plain wall-clock harness: calibrate the iteration count
//! to a ~300 ms measurement window, run three batches, report min/mean/max
//! per-iteration time. Passing `--test` or `--quick` (or setting
//! `CRITERION_QUICK=1`) runs each benchmark once — that is what CI uses to
//! smoke-test bench targets without paying measurement time.

use std::time::{Duration, Instant};

/// Opaque value barrier (re-uses the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick_arg = std::env::args().any(|a| a == "--test" || a == "--quick");
        let quick_env = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
        Self {
            quick: quick_arg || quick_env,
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(&id.into(), self.quick, &mut f);
        self
    }

    /// Start a named group; member benchmarks print as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            prefix: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.prefix, id.into());
        run_named(&name, self.parent.quick, &mut f);
        self
    }

    /// End the group (a no-op kept for API compatibility).
    pub fn finish(self) {}
}

fn run_named<F: FnMut(&mut Bencher)>(name: &str, quick: bool, f: &mut F) {
    let mut b = Bencher {
        quick,
        samples: Vec::new(),
    };
    f(&mut b);
    match b.report() {
        Some((min, mean, max)) if !quick => {
            println!(
                "{name:<44} time: [{} {} {}]",
                fmt_ns(min),
                fmt_ns(mean),
                fmt_ns(max)
            );
        }
        _ => println!("{name:<44} ok (quick mode)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Per-benchmark timing driver.
#[derive(Debug)]
pub struct Bencher {
    quick: bool,
    /// Per-batch mean nanoseconds per iteration.
    samples: Vec<f64>,
}

impl Bencher {
    /// Time the closure: calibrated batches in normal mode, a single call in
    /// quick mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.quick {
            black_box(f());
            return;
        }
        // Calibrate: grow the iteration count until one batch costs ≥ 25 ms.
        let mut n: u64 = 1;
        let batch_ns = loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(25) || n >= (1 << 24) {
                break dt.as_nanos() as f64;
            }
            n *= 4;
        };
        self.samples.push(batch_ns / n as f64);
        // Measure: three more batches sized to ~100 ms each.
        let per_iter = (batch_ns / n as f64).max(0.1);
        let m = ((100.0e6 / per_iter) as u64).clamp(1, 1 << 26);
        for _ in 0..3 {
            let t0 = Instant::now();
            for _ in 0..m {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_nanos() as f64 / m as f64);
        }
    }

    fn report(&self) -> Option<(f64, f64, f64)> {
        if self.samples.is_empty() {
            return None;
        }
        let min = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().copied().fold(0.0_f64, f64::max);
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        Some((min, mean, max))
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bencher_runs_once() {
        let mut b = Bencher {
            quick: true,
            samples: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.report().is_none());
    }

    #[test]
    fn group_names_compose() {
        let mut c = Criterion { quick: true };
        let mut g = c.benchmark_group("grp");
        let mut ran = false;
        g.bench_function("inner", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12.0e3).ends_with("µs"));
        assert!(fmt_ns(12.0e6).ends_with("ms"));
        assert!(fmt_ns(12.0e9).ends_with('s'));
    }
}
