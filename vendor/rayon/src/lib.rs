//! Offline drop-in subset of the `rayon` API.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the small slice of rayon that the workspace actually uses:
//! `par_iter`/`into_par_iter` + `map` + `collect`/`unzip`, and
//! `ThreadPoolBuilder`/`ThreadPool::install` for the thread-scaling benches.
//!
//! Parallelism is real: work is chunked across `std::thread::scope` threads,
//! one chunk per logical core (or per `ThreadPool` thread inside `install`),
//! with order-preserving reassembly. Error-carrying collects
//! (`collect::<Result<Vec<_>, E>>()`) short-circuit on the first `Err` in
//! chunk order, matching rayon's deterministic collect semantics closely
//! enough for this workspace.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Thread count override installed by [`ThreadPool::install`];
    /// 0 means "use the global default".
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// Number of threads parallel operations will use on this thread right now.
pub fn current_num_threads() -> usize {
    let n = POOL_THREADS.with(Cell::get);
    if n == 0 {
        default_num_threads()
    } else {
        n
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type kept for API compatibility; building a pool cannot fail here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with the default thread count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the pool's thread count (0 = default).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    ///
    /// # Errors
    /// Never fails in this implementation; the `Result` mirrors rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool" that scopes the thread count used by parallel iterators
/// executed inside [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

struct PoolGuard(usize);

impl Drop for PoolGuard {
    fn drop(&mut self) {
        POOL_THREADS.with(|c| c.set(self.0));
    }
}

impl ThreadPool {
    /// Run `f` with this pool's thread count governing nested parallel
    /// iterators (panic-safe restore of the previous count).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(Cell::get);
        POOL_THREADS.with(|c| c.set(self.num_threads));
        let _guard = PoolGuard(prev);
        f()
    }

    /// This pool's thread count.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Order-preserving parallel map over owned items: split into one chunk per
/// thread, run under `std::thread::scope`, reassemble in order.
fn par_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let nt = current_num_threads().clamp(1, len.max(1));
    if nt <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = len.div_ceil(nt);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(nt);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let outputs: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(len);
    for chunk in outputs {
        out.extend(chunk);
    }
    out
}

/// A materialized parallel iterator (the only base kind this subset needs).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each item with `f`, to be executed in parallel on consumption.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Pair each item with its index, mirroring rayon's
    /// `IndexedParallelIterator::enumerate`.
    #[must_use]
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Run `f` on every item in parallel, mirroring rayon's `for_each`.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_map_vec(self.items, &f);
    }
}

/// A mapped parallel iterator: terminal operations run the map in parallel.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    fn run<R>(self) -> Vec<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        par_map_vec(self.items, &self.f)
    }

    /// Collect mapped results, preserving input order. Supports any
    /// `FromIterator` target, including `Result<Vec<_>, E>`.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        self.run().into_iter().collect()
    }

    /// Unzip mapped pairs into two collections, preserving input order.
    pub fn unzip<A, B, CA, CB>(self) -> (CA, CB)
    where
        A: Send,
        B: Send,
        F: Fn(T) -> (A, B) + Sync,
        CA: Default + Extend<A>,
        CB: Default + Extend<B>,
    {
        self.run().into_iter().unzip()
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Convert into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_iter()` on slices (and, by deref, `Vec`).
pub trait ParallelSliceRef<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSliceRef<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks_mut()` on slices (and, by deref, `Vec`): disjoint mutable
/// chunks processed in parallel, mirroring rayon's `ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of
    /// `chunk_size` elements (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk_size must be nonzero");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// The rayon prelude: glob-import the iterator traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut, ParallelSliceRef};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 2);
        }
    }

    #[test]
    fn collect_into_result_short_circuits() {
        let r: Result<Vec<usize>, String> = (0..100)
            .into_par_iter()
            .map(|i| {
                if i == 57 {
                    Err(format!("bad {i}"))
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(r.unwrap_err(), "bad 57");
        let ok: Result<Vec<usize>, String> = (0..100).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 100);
    }

    #[test]
    fn par_iter_unzip() {
        let xs = [1.0_f64, 2.0, 3.0];
        let (a, b): (Vec<f64>, Vec<f64>) = xs.par_iter().map(|&x| (x, -x)).unzip();
        assert_eq!(a, vec![1.0, 2.0, 3.0]);
        assert_eq!(b, vec![-1.0, -2.0, -3.0]);
    }

    #[test]
    fn pool_install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        assert_ne!(POOL_THREADS.with(std::cell::Cell::get), 3);
    }

    #[test]
    fn enumerate_pairs_items_with_indices() {
        let v: Vec<usize> = (10..20)
            .into_par_iter()
            .enumerate()
            .map(|(i, x)| x - i)
            .collect();
        assert_eq!(v, vec![10; 10]);
    }

    #[test]
    fn par_chunks_mut_covers_whole_slice_disjointly() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(ci, chunk)| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = ci * 10 + k;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let v: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let w: Vec<usize> = (0..1).into_par_iter().map(|i| i + 7).collect();
        assert_eq!(w, vec![7]);
    }
}
