//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! supplies the slice of proptest the workspace uses: the `proptest!` macro
//! with `#![proptest_config(...)]`, range strategies over floats and
//! integers, and `prop_assert!`/`prop_assert_eq!`/`prop_assume!`.
//!
//! Sampling is deterministic: each case's inputs derive from a hash of the
//! test's module path + name and the case index (splitmix64), so failures
//! are exactly reproducible without persistence files. There is no
//! shrinking — the failing inputs are printed verbatim instead.
//!
//! The `PROPTEST_CASES` environment variable **caps** the per-test case
//! count: the effective count is `min(config.cases, PROPTEST_CASES)`. CI
//! uses this to bound property-test wall-clock.

/// Runner configuration and helpers (mirrors `proptest::test_runner`).
pub mod test_runner {
    /// Subset of proptest's `Config`, accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Unused; kept for struct-update compatibility with real proptest.
        pub max_shrink_iters: u32,
        /// Unused; kept for struct-update compatibility with real proptest.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 1024,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure with its message.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
    }
}

/// Effective case count: the configured count capped by `PROPTEST_CASES`.
#[must_use]
pub fn effective_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
    {
        Some(env_cap) => configured.min(env_cap.max(1)),
        None => configured,
    }
}

/// Deterministic per-case RNG (splitmix64 over an FNV-1a seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for `case` of the test identified by `name` (module path + fn).
    #[must_use]
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = Self {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        };
        // One warmup step decorrelates adjacent case indices.
        let _ = rng.next_u64();
        rng
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator over a parameter space (subset of proptest's trait).
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = self.end.wrapping_sub(self.start) as u64;
                if span == 0 {
                    self.start
                } else {
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        }
    )+};
}

int_range_strategy!(u64, usize, u32, i64, i32);

/// Expands to one `#[test]` fn per property, looping over sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal muncher for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = $crate::effective_cases(config.cases);
            for case in 0..cases {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1, cases, msg, inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Property assertion: on failure, returns an error carrying the message
/// (the runner reports it with the sampled inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skip the current case when its sampled inputs are out of scope.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// The proptest prelude: macros, the strategy trait, and `ProptestConfig`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_case("x::y", 3);
        let mut b = crate::TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn effective_cases_respects_config_without_env() {
        // The env var may be set by CI; only check the no-env lower bound.
        assert!(crate::effective_cases(64) <= 64);
        assert!(crate::effective_cases(64) >= 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn f64_range_in_bounds(x in 2.0_f64..5.0) {
            prop_assert!((2.0..5.0).contains(&x), "x = {}", x);
        }

        #[test]
        fn u64_range_in_bounds(n in 10u64..20) {
            prop_assert!((10..20).contains(&n));
            prop_assume!(n != 11);
            prop_assert!(n != 11);
        }
    }
}
